"""Performance models for the simulated hardware.

The paper ran on a Perlmutter node: 2× AMD EPYC 7763 (128 cores, MKL
multithreaded BLAS) and one NVIDIA A100-40GB (MAGMA BLAS, CUDA transfers over
PCIe 4).  No GPU exists in this environment, so runtimes are *modeled*: every
BLAS call and transfer advances a simulated clock according to the models
below, while the numerics execute exactly (NumPy/LAPACK) so results stay
verifiable.

**Dimension dilation.**  The surrogate matrices are scaled-down meshes of the
paper's problems: a surrogate supernode with an ``(m, w)`` panel corresponds
to a paper-scale supernode of roughly ``(σ·m, σ·w)`` (σ = ``dilation``,
default 10 — e.g. the Queen_4147 surrogate is a 15×15×11 mesh standing in
for a ~150×150×110-scale problem whose separators are ~σ× wider).  The cost
model therefore charges every kernel at its *dilated* dimensions
(flops × σ³) and every transfer/assembly at dilated sizes (bytes × σ²),
which restores the paper-scale ratio of arithmetic to per-call overhead and
lets all hardware constants below be **real, documented A100 / EPYC / PCIe
figures** rather than invented ones.  Modeled runtimes consequently land in
the paper's seconds range.

A convenient corollary: the paper's supernode-size thresholds (600,000 panel
entries for RL, 750,000 for RLB) apply *unchanged* in dilated units — see
:mod:`repro.numeric.threshold`.

Constant provenance
-------------------
* ``CpuModel.per_core_gflops = 20``: EPYC 7763 core peak is 39.2 GF/s FP64
  (2.45 GHz × 16 flops/cycle); sustained MKL DGEMM ≈ 50 %.
* ``GpuModel.peak_gflops = 16000``: A100 FP64 tensor-core DGEMM peak is
  19.5 TF/s; MAGMA/cuBLAS sustain ≈ 16 TF/s on large matrices.
* ``GpuModel.half_flops = 5e8``: A100 DGEMM reaches half its peak around
  matrix dimension ~600–900.
* ``TransferModel``: PCIe 4.0 ×16 sustains ~24 GB/s per direction with
  ~10 µs end-to-end latency; the effective 48 GB/s reflects the dual DMA
  engines' aggregate when pipelined through pinned staging buffers (and is
  a calibrated effective value — see ``benchmarks/calibrate.py``).
* ``MachineModel.flops_hi = 3e7`` / ``entries_hi = 3e4``: dilation ramp
  endpoints — the largest surrogate kernels/panels map to σ = 10.
* ``GpuModel.launch_s = 2e-5``: CUDA kernel launch plus MAGMA dispatch /
  synchronization per call (~10–30 µs in practice).
* ``CpuModel.fp32_speedup = 2.0``: SGEMM moves half the bytes and the EPYC
  core retires twice the FP32 flops/cycle (32 vs 16) — the classic ~2×
  single-precision BLAS throughput win.
* ``GpuModel.fp32_speedup = 2.0``: A100 non-tensor FP32 peak is 19.5 TF/s
  vs 9.7 TF/s FP64 CUDA-core; MAGMA's Cholesky kernels ride the CUDA cores.
  (Tensor-core mixed-precision GEMM can reach far higher — up to ~12.7× on
  V100-class hardware — but that path changes the numerics; the modeled
  lane stays at the conservative non-tensor 2×.)

Every byte-accounting helper takes an ``itemsize`` (default 8): the graded
dilation ramps are *entry*-count ramps, so fp32 objects of E entries dilate
like fp64 objects of E entries while moving half the bytes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..dense import flops as _fl

__all__ = [
    "CpuModel",
    "GpuModel",
    "TransferModel",
    "MachineModel",
    "CPU_THREAD_CHOICES",
    "kernel_flops",
]

#: MKL thread counts the paper sweeps for the CPU baseline (§IV-B).
CPU_THREAD_CHOICES = (8, 16, 32, 64, 128)


def kernel_flops(kind, m, n, k=0):
    """Flops of a kernel by name: ``potrf(n)``, ``trsm(m,n)``, ``syrk(n,k)``,
    ``gemm(m,n,k)``."""
    if kind == "potrf":
        return _fl.potrf_flops(n)
    if kind == "trsm":
        return _fl.trsm_flops(m, n)
    if kind == "syrk":
        return _fl.syrk_flops(n, k)
    if kind == "gemm":
        return _fl.gemm_flops(m, n, k)
    raise ValueError(f"unknown kernel kind {kind!r}")


@dataclass(frozen=True)
class CpuModel:
    """Multithreaded CPU BLAS model (MKL on 2× EPYC 7763).

    A kernel of ``f`` flops on ``t`` available threads effectively engages
    ``t_eff = clamp(f / parallel_grain_flops, 1, t)`` threads — MKL will not
    spread a small kernel across the machine — and runs at
    ``per_core_gflops × t_eff``.  This reproduces the paper's observation
    that the best MKL thread count depends on the matrix (8–128 swept, best
    taken).
    """

    per_core_gflops: float = 20.0
    parallel_grain_flops: float = 2.0e8
    call_overhead_s: float = 1.0e-6
    assembly_thread_gbs: float = 6.0
    assembly_max_gbs: float = 120.0
    assembly_overhead_s: float = 1.0e-5
    fp32_speedup: float = 2.0

    def kernel_time(self, flops, threads, speedup=1.0):
        """Modeled seconds for one BLAS call of ``flops`` on ``threads``
        (``speedup`` > 1 for the single-precision lane)."""
        t_eff = min(max(flops / self.parallel_grain_flops, 1.0), threads)
        rate = self.per_core_gflops * 1e9 * t_eff * speedup
        return self.call_overhead_s + flops / rate

    def assembly_time(self, nbytes, threads):
        """Modeled seconds for one scatter-add pass of ``nbytes``
        (read+write) with ``threads`` OpenMP threads: a fork-join overhead
        plus bandwidth-bound streaming.  The fork-join term is what makes
        per-block assembly (RLB-GPU v2) relatively expensive — one of the
        reasons the paper finds RL-GPU faster."""
        bw = min(threads * self.assembly_thread_gbs, self.assembly_max_gbs)
        return self.assembly_overhead_s + nbytes / (bw * 1e9)

    def best_threads(self, total_time_by_threads):
        """Given ``{threads: seconds}``, return ``(threads, seconds)`` of the
        best configuration — the paper's baseline protocol."""
        t = min(total_time_by_threads, key=total_time_by_threads.get)
        return t, total_time_by_threads[t]


@dataclass(frozen=True)
class GpuModel:
    """GPU kernel model (A100 + MAGMA).

    ``kernel_time`` is launch latency plus ``flops`` at the size-dependent
    rate ``peak × f / (f + half_flops)``: kernels far below ``half_flops``
    cannot fill the device — the reason the paper keeps small supernodes on
    the CPU.
    """

    peak_gflops: float = 16000.0
    half_flops: float = 5.0e8
    launch_s: float = 2.0e-5
    fp32_speedup: float = 2.0

    def kernel_time(self, flops, speedup=1.0):
        """Modeled seconds for one device kernel of ``flops`` (``speedup``
        > 1 for the single-precision lane)."""
        return self.launch_s + (flops + self.half_flops) / (
            self.peak_gflops * 1e9 * speedup
        )


@dataclass(frozen=True)
class TransferModel:
    """PCIe 4.0 transfer model: fixed latency plus bytes over bandwidth.

    The paper's §IV-B finding — "latency is negligible but bandwidth is
    important" — is the regime where ``nbytes / bandwidth`` dominates
    ``latency_s`` for update-matrix transfers; at dilated sizes that holds.
    """

    latency_s: float = 1.0e-5
    bandwidth_gbs: float = 64.0

    def time(self, nbytes):
        """Modeled seconds to move ``nbytes`` one way."""
        return self.latency_s + nbytes / (self.bandwidth_gbs * 1e9)


@dataclass(frozen=True)
class MachineModel:
    """Bundle of the three device models plus global simulation parameters.

    **Size-graded dilation.**  Refining a mesh by σ leaves the *bottom* of
    the elimination tree unchanged (leaf supernodes are the same absolute
    size — there are just more of them) while widening the top separators by
    ~σ.  The dilation factor is therefore graded by operation size: an
    operation of ``f`` raw flops is charged at ``σ(f)³ × f`` where ``σ(f)``
    ramps log-linearly from 1 (at/below ``flops_lo``) to ``dilation``
    (at/above ``flops_hi``); transfers and assemblies of ``E`` raw entries
    are charged at ``σ_b(E)² × bytes`` with the analogous ``entries_lo/hi``
    ramp.  Small supernodes thus live in the real hardware's launch/latency-
    dominated regime (where the paper's GPU-only variant loses) and big
    separator panels in its bandwidth/flop-dominated regime (where the GPU
    wins 4×+).

    Attributes
    ----------
    dilation:
        Maximum dimension dilation σ_max.
    gpu_run_cpu_threads:
        Host MKL/OpenMP thread count used for the CPU portions (small
        supernodes, assembly) of the GPU-accelerated runs.
    """

    cpu: CpuModel = field(default_factory=CpuModel)
    gpu: GpuModel = field(default_factory=GpuModel)
    transfer: TransferModel = field(default_factory=TransferModel)
    gpu_run_cpu_threads: int = 128
    dilation: float = 10.0
    flops_lo: float = 1.0e4
    flops_hi: float = 3.0e7
    entries_lo: float = 1.0e3
    entries_hi: float = 3.0e5

    # -- graded dilation factors ----------------------------------------
    def _sigma(self, x, lo, hi):
        if x <= lo:
            return 1.0
        if x >= hi:
            return self.dilation
        frac = math.log(x / lo) / math.log(hi / lo)
        return self.dilation ** frac

    def sigma_flops(self, flops_raw):
        """Graded dimension-dilation factor for a kernel of raw flops."""
        return self._sigma(flops_raw, self.flops_lo, self.flops_hi)

    def sigma_entries(self, entries_raw):
        """Graded dilation factor for a data object of raw entries."""
        return self._sigma(entries_raw, self.entries_lo, self.entries_hi)

    # -- dilated accounting helpers ------------------------------------
    def scaled_kernel_flops(self, kind, m=0, n=0, k=0):
        """Flops of a kernel at (graded) dilated dimensions."""
        f = kernel_flops(kind, m, n, k)
        return f * self.sigma_flops(f) ** 3

    def scaled_bytes(self, nbytes, itemsize=8):
        """Bytes at (graded) dilated panel sizes.  ``itemsize`` converts
        bytes to the entry count driving the dilation ramp — an fp32 object
        dilates like an fp64 object of the same *entries* while moving half
        the bytes."""
        return nbytes * self.sigma_entries(nbytes / float(itemsize)) ** 2

    def scaled_panel_entries(self, entries):
        """Panel entries at dilated scale — what the supernode-size
        threshold compares against."""
        return entries * self.sigma_entries(entries) ** 2

    def cpu_fp_speedup(self, itemsize):
        """Host BLAS throughput multiplier for an element size (1.0 for
        fp64, :attr:`CpuModel.fp32_speedup` for fp32)."""
        return self.cpu.fp32_speedup if itemsize == 4 else 1.0

    def gpu_fp_speedup(self, itemsize):
        """Device throughput multiplier for an element size."""
        return self.gpu.fp32_speedup if itemsize == 4 else 1.0

    def cpu_kernel_seconds(self, kind, m=0, n=0, k=0, *, threads,
                           itemsize=8):
        """Host BLAS call time at dilated dimensions."""
        return self.cpu.kernel_time(
            self.scaled_kernel_flops(kind, m, n, k), threads,
            self.cpu_fp_speedup(itemsize),
        )

    def assembly_seconds(self, nbytes, *, threads, itemsize=8):
        """Host scatter-add time at dilated sizes."""
        return self.cpu.assembly_time(
            self.scaled_bytes(nbytes, itemsize), threads
        )

    def gpu_kernel_seconds(self, kind, m=0, n=0, k=0, *, itemsize=8):
        """Device kernel time at dilated dimensions."""
        return self.gpu.kernel_time(
            self.scaled_kernel_flops(kind, m, n, k),
            self.gpu_fp_speedup(itemsize),
        )

    def transfer_seconds(self, nbytes, itemsize=8):
        """One-way transfer time at dilated sizes."""
        return self.transfer.time(self.scaled_bytes(nbytes, itemsize))
