"""Simulated GPU subsystem: device, timeline, transfer engine, cost models.

See DESIGN.md §2 for why the GPU is simulated and what the simulation
preserves (all control flow, memory pressure and overlap semantics of the
paper's CUDA/MAGMA implementation; only the clock is modeled)."""

from .costmodel import (
    CpuModel,
    GpuModel,
    TransferModel,
    MachineModel,
    CPU_THREAD_CHOICES,
    kernel_flops,
)
from .device import (
    DeviceOutOfMemory,
    DeviceBuffer,
    Timeline,
    DeviceTimeline,
    TransferHandle,
    SimulatedGpu,
)
from .trace import TraceEvent, Tracer, LANES

__all__ = [
    "CpuModel",
    "GpuModel",
    "TransferModel",
    "MachineModel",
    "CPU_THREAD_CHOICES",
    "kernel_flops",
    "DeviceOutOfMemory",
    "DeviceBuffer",
    "Timeline",
    "DeviceTimeline",
    "TransferHandle",
    "SimulatedGpu",
    "TraceEvent",
    "Tracer",
    "LANES",
]
