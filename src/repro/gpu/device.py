"""The simulated GPU: memory, streams, transfers and a three-clock timeline.

This is the substitute for the paper's A100 + CUDA + MAGMA stack (see
DESIGN.md §2).  It executes every numeric kernel *for real* (NumPy/LAPACK on
the host) while modeling *when* each operation would complete on a device:

* one **compute stream** — kernels run in issue order, each starting when
  both the stream and its input buffers are ready;
* two **DMA copy engines** — H2D and D2H transfers each serialize on their
  own engine but overlap each other and compute (this is what makes the
  paper's *asynchronous* panel transfer and RLB-v2's per-block transfers
  overlap SYRK/GEMM work);
* the **host clock** — CPU-side BLAS for small supernodes, assembly loops,
  and the per-call launch overhead of every device operation.

All times and sizes are charged at the machine model's *dilated* scale
(see :mod:`repro.gpu.costmodel`): a surrogate panel of ``nbytes`` occupies
``σ² × nbytes`` of simulated device memory and transfers in the time of a
paper-scale panel.  Device memory is byte-accounted against a capacity;
exceeding it raises :class:`DeviceOutOfMemory` — exactly how the paper's RL
fails on nlpkkt120.

Buffer discipline: data "moves" to the device via :meth:`SimulatedGpu.h2d`,
which hands back a :class:`DeviceBuffer` wrapping the *same* NumPy array.
Device kernels only accept :class:`DeviceBuffer`; host code must call
:meth:`d2h` (or wait on the async handle) before using the array again, and
violations raise — so the simulation catches real transfer-ordering bugs.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..dense import kernels as _dk
from .costmodel import MachineModel

__all__ = [
    "DeviceOutOfMemory",
    "DeviceBuffer",
    "Timeline",
    "DeviceTimeline",
    "TransferHandle",
    "GpuStats",
    "SimulatedGpu",
]


class DeviceOutOfMemory(RuntimeError):
    """Raised when an allocation exceeds the simulated device capacity."""

    def __init__(self, requested, free, capacity):
        super().__init__(
            f"device out of memory: requested {requested:.0f} B, "
            f"free {free:.0f} B of {capacity:.0f} B (dilated scale)"
        )
        self.requested = float(requested)
        self.free = float(free)
        self.capacity = float(capacity)


@dataclass
class Timeline:
    """Monotone clocks: host CPU, GPU compute stream, and the device's two
    DMA copy engines (the A100 has independent host-to-device and
    device-to-host engines, so uploads and downloads overlap).

    Pass a :class:`~repro.gpu.trace.Tracer` as ``tracer`` to record every
    modeled interval for Gantt/Chrome-trace rendering.

    ``coupled`` selects the issue model.  ``True`` (the default, and the
    semantics of every hand-rolled engine) means device operations are
    issued *by the host*: a kernel or transfer starts no earlier than the
    host clock at its issue point.  ``False`` models a dispatcher thread
    issuing work out of band (the multi-device assumption of
    :mod:`repro.numeric.multigpu`): device operations are gated only by
    their engine and their explicit ``ready`` times, never by the host
    clock — the decoupling :class:`~repro.numeric.executor.GpuStreamBackend`
    uses for ``devices > 1``.

    ``gpu_lane`` / ``copy_in_lane`` / ``copy_out_lane`` name the trace
    lanes the device clocks record on, so several device timelines can
    share one tracer (``"gpu0"``, ``"gpu1"``, ... in a multi-device run).
    """

    cpu: float = 0.0
    gpu: float = 0.0
    copy_in: float = 0.0
    copy_out: float = 0.0
    tracer: object = None
    coupled: bool = True
    gpu_lane: str = "gpu"
    copy_in_lane: str = "copy_in"
    copy_out_lane: str = "copy_out"

    def advance_cpu(self, dt, label="host"):
        """Host does ``dt`` seconds of work."""
        if self.tracer is not None:
            self.tracer.record("cpu", label, self.cpu, self.cpu + dt)
        self.cpu += dt

    def enqueue_gpu(self, duration, ready=0.0, label="kernel"):
        """Issue a kernel now (host clock); it runs when the stream and its
        inputs are free.  Returns its completion time."""
        start = max(self.gpu, self.cpu, ready) if self.coupled \
            else max(self.gpu, ready)
        self.gpu = start + duration
        if self.tracer is not None:
            self.tracer.record(self.gpu_lane, label, start, self.gpu)
        return self.gpu

    def enqueue_copy(self, duration, ready=0.0, *, direction="d2h",
                     label=None, nbytes=0.0):
        """Issue a transfer now on the engine for ``direction`` (``"h2d"``
        or ``"d2h"``); engines are serial individually but independent of
        each other and of the compute stream.  Returns completion time."""
        issue = self.cpu if self.coupled else 0.0
        if direction == "h2d":
            start = max(self.copy_in, issue, ready)
            self.copy_in = start + duration
            done = self.copy_in
            lane = self.copy_in_lane
        else:
            start = max(self.copy_out, issue, ready)
            self.copy_out = start + duration
            done = self.copy_out
            lane = self.copy_out_lane
        if self.tracer is not None:
            self.tracer.record(lane, label or direction, start, done,
                               nbytes=nbytes)
        return done

    def wait_cpu_until(self, t, label="sync"):
        """Host blocks until simulated time ``t``."""
        if t > self.cpu:
            if self.tracer is not None:
                self.tracer.record("cpu", label, self.cpu, t)
            self.cpu = t

    def elapsed(self):
        """Wall-clock so far = host clock (completion requires host sync)."""
        return self.cpu


class DeviceTimeline(Timeline):
    """The per-device clocks of one GPU in a multi-device run.

    Compute-stream and copy-engine clocks are the device's own; the *host*
    clock is shared — every ``advance_cpu`` / ``wait_cpu_until`` (and every
    ``cpu`` read) goes through the ``host`` timeline, so N devices
    serialize their host-side work (assembly, blocking waits) on one CPU
    exactly as the single-device model does.  Construct with distinct
    ``gpu_lane`` / ``copy_in_lane`` / ``copy_out_lane`` names so all
    devices can share the host timeline's tracer.
    """

    def __init__(self, host, **kwargs):
        object.__setattr__(self, "_host", host)
        kwargs.setdefault("tracer", host.tracer)
        super().__init__(cpu=host.cpu, **kwargs)

    @property
    def cpu(self):
        return self._host.cpu

    @cpu.setter
    def cpu(self, value):
        # the dataclass __init__ assigns the field; never rewind the
        # shared clock from a device's construction or local bookkeeping
        if value > self._host.cpu:
            self._host.cpu = value

    def advance_cpu(self, dt, label="host"):
        self._host.advance_cpu(dt, label)

    def wait_cpu_until(self, t, label="sync"):
        self._host.wait_cpu_until(t, label)


class DeviceBuffer:
    """A device allocation mirroring a host NumPy array.

    ``ready`` is the simulated time at which the most recent operation
    writing this buffer completes; kernels reading it start no earlier.
    ``nbytes`` is the *dilated* (simulated) size.
    """

    __slots__ = ("array", "nbytes", "ready", "alive", "on_device")

    def __init__(self, array, nbytes, ready):
        self.array = array
        self.nbytes = float(nbytes)
        self.ready = float(ready)
        self.alive = True
        self.on_device = True

    def _check(self):
        if not self.alive:
            raise RuntimeError("use of freed device buffer")
        if not self.on_device:
            raise RuntimeError("buffer was transferred back to host")


@dataclass
class TransferHandle:
    """Handle of an asynchronous D2H transfer; wait on it before the host
    touches the data."""

    buffer: DeviceBuffer
    done_at: float
    completed: bool = False


@dataclass
class GpuStats:
    """Operation counters of one simulated-GPU session (dilated bytes)."""

    kernels: int = 0
    kernel_seconds: float = 0.0
    h2d_bytes: float = 0.0
    d2h_bytes: float = 0.0
    transfers: int = 0
    peak_memory: float = 0.0


class SimulatedGpu:
    """Simulated device: allocator + kernel/transfer scheduling + numerics.

    Parameters
    ----------
    memory_bytes:
        Device capacity in *dilated* bytes (the suite default corresponds to
        a scaled A100 — see :mod:`repro.numeric.threshold`).
    machine:
        :class:`~repro.gpu.costmodel.MachineModel` supplying kernel,
        transfer and dilation parameters.
    timeline:
        Optional shared :class:`Timeline` (one per factorization run).
    launch_overhead_s:
        Host-side cost of issuing any device operation (cudaLaunch /
        cudaMemcpyAsync call overhead).
    """

    def __init__(self, memory_bytes, *, machine=None, timeline=None,
                 launch_overhead_s=2.0e-6):
        self.capacity = float(memory_bytes)
        self.used = 0.0
        self.machine = machine or MachineModel()
        self.timeline = timeline if timeline is not None else Timeline()
        self.launch_overhead_s = float(launch_overhead_s)
        self.stats = GpuStats()

    # ------------------------------------------------------------------
    # memory
    # ------------------------------------------------------------------
    @property
    def free_bytes(self):
        """Unallocated device memory (dilated bytes)."""
        return self.capacity - self.used

    def _alloc(self, nbytes):
        if nbytes > self.free_bytes:
            raise DeviceOutOfMemory(nbytes, self.free_bytes, self.capacity)
        self.used += nbytes
        self.stats.peak_memory = max(self.stats.peak_memory, self.used)

    def free(self, buf):
        """Release a buffer's device memory (host side, immediate)."""
        if buf.alive:
            self.used -= buf.nbytes
            buf.alive = False

    # ------------------------------------------------------------------
    # transfers
    # ------------------------------------------------------------------
    def _launch(self):
        """Charge the host-side issue overhead of one device operation —
        only in the coupled (host-driven) issue model; a decoupled
        timeline's dispatcher thread issues out of band."""
        if self.timeline.coupled:
            self.timeline.advance_cpu(self.launch_overhead_s, label="launch")

    def h2d(self, array, *, ready=0.0):
        """Allocate and copy a host array to the device (async; the returned
        buffer's ``ready`` marks copy completion).  ``ready`` optionally
        delays the copy's start — e.g. a task-DAG ready time; in the
        host-driven issue model the host clock already dominates it."""
        itemsize = array.itemsize
        nbytes = self.machine.scaled_bytes(array.nbytes, itemsize)
        self._alloc(nbytes)
        self._launch()
        done = self.timeline.enqueue_copy(
            self.machine.transfer_seconds(array.nbytes, itemsize),
            ready=ready, direction="h2d", label="h2d", nbytes=nbytes,
        )
        self.stats.h2d_bytes += nbytes
        self.stats.transfers += 1
        return DeviceBuffer(array, nbytes, done)

    def alloc_like(self, shape, dtype=np.float64):
        """Allocate an uninitialised device buffer (e.g. an update matrix)
        backed by a fresh host mirror array."""
        array = np.zeros(shape, dtype=dtype, order="F")
        nbytes = self.machine.scaled_bytes(array.nbytes, array.itemsize)
        self._alloc(nbytes)
        self._launch()
        ready = self.timeline.cpu if self.timeline.coupled else 0.0
        return DeviceBuffer(array, nbytes, ready)

    def d2h_async(self, buf, *, raw_nbytes=None):
        """Start copying a buffer back to the host; returns a
        :class:`TransferHandle` to wait on."""
        buf._check()
        self._launch()
        raw = raw_nbytes if raw_nbytes is not None else buf.array.nbytes
        itemsize = buf.array.itemsize
        done = self.timeline.enqueue_copy(
            self.machine.transfer_seconds(raw, itemsize), ready=buf.ready,
            label="d2h", nbytes=self.machine.scaled_bytes(raw, itemsize),
        )
        self.stats.d2h_bytes += self.machine.scaled_bytes(raw, itemsize)
        self.stats.transfers += 1
        return TransferHandle(buf, done)

    def d2h(self, buf):
        """Blocking D2H: host waits for the copy before proceeding."""
        handle = self.d2h_async(buf)
        self.wait(handle)

    def wait(self, handle, *, keep_on_device=False):
        """Block the host until an async transfer completes; afterwards the
        host may read the mirrored array.

        By default the buffer is considered handed back to the host (further
        device kernels on it raise — the transfer-ordering discipline).
        ``keep_on_device=True`` models a plain snapshot copy after which the
        device-resident data remains valid (used by the synchronous-transfer
        ablation variants, which copy mid-schedule and keep computing).
        """
        if not handle.completed:
            self.timeline.wait_cpu_until(handle.done_at)
            handle.completed = True
            if not keep_on_device:
                handle.buffer.on_device = False

    # ------------------------------------------------------------------
    # kernels (numerics execute for real; time is modeled)
    # ------------------------------------------------------------------
    def _issue(self, kind, m, n, k, *bufs):
        for b in bufs:
            b._check()
        self._launch()
        dt = self.machine.gpu_kernel_seconds(
            kind, m, n, k, itemsize=bufs[0].array.itemsize
        )
        ready = max(b.ready for b in bufs)
        done = self.timeline.enqueue_gpu(dt, ready=ready, label=kind)
        for b in bufs:
            b.ready = done
        self.stats.kernels += 1
        self.stats.kernel_seconds += dt
        return done

    def potrf(self, buf, view):
        """Device DPOTRF on ``view`` (a square sub-array of ``buf.array``)."""
        _dk.potrf(view)
        return self._issue("potrf", 0, view.shape[0], 0, buf)

    def trsm(self, buf, rect, tri):
        """Device DTRSM ``rect := rect tri^{-T}`` within ``buf``."""
        _dk.trsm_right(rect, tri)
        return self._issue("trsm", rect.shape[0], tri.shape[0], 0, buf)

    def syrk(self, src, dst, rect, out):
        """Device DSYRK: ``out[:n,:n] (lower) = rect @ rect^T``."""
        _dk.syrk_lower(rect, out=out)
        return self._issue("syrk", 0, rect.shape[0], rect.shape[1], src, dst)

    def gemm(self, src, dst, a, b, out):
        """Device DGEMM: ``out = a @ b^T``."""
        _dk.gemm_nt(a, b, out=out)
        return self._issue("gemm", a.shape[0], b.shape[0], a.shape[1],
                           src, dst)

    def syrk_sub(self, buf, rect, target):
        """Device DSYRK-accumulate: ``target -= rect @ rect^T`` (lower
        triangle valid) within the same buffer — the Schur-complement update
        of a multifrontal front."""
        u = _dk.syrk_lower(rect)
        target[:u.shape[0], :u.shape[1]] -= u
        return self._issue("syrk", 0, rect.shape[0], rect.shape[1], buf)
