"""Event tracing for the simulated machine: Gantt charts and Chrome traces.

Attach a :class:`Tracer` to a :class:`~repro.gpu.device.Timeline` and every
modeled operation — host work, device kernels, H2D/D2H transfers, host sync
waits — is recorded as a ``(lane, name, start, end)`` interval.  This is the
simulated analogue of an ``nsys``/``nvprof`` timeline and makes the paper's
scheduling claims *visible*: the asynchronous panel D2H of RL-GPU overlapping
the SYRK, RLB-v2's per-block copies pipelining with the next block's kernel,
and the serialization that the synchronous ablation variants reintroduce.

Outputs:

* :meth:`Tracer.chrome_trace` / :meth:`Tracer.save_chrome_trace` — the
  Chrome ``chrome://tracing`` / Perfetto JSON array format;
* :meth:`Tracer.ascii_gantt` — a terminal Gantt chart, one row per lane;
* :meth:`Tracer.lane_busy` / :meth:`Tracer.utilization` /
  :meth:`Tracer.overlap` — aggregate concurrency statistics;
* :meth:`Tracer.merged` — combine several tracers into one view (the
  hybrid engine instead shares ONE tracer between its measured worker
  lanes and modeled stream lanes, so both families land in one trace
  with a common clock origin).

Example::

    from repro.gpu import SimulatedGpu, Tracer
    from repro.gpu.device import Timeline

    tracer = Tracer()
    gpu = SimulatedGpu(4 * 2**30, timeline=Timeline(tracer=tracer))
    factorize_rl_gpu(symb, A, device=gpu)
    print(tracer.ascii_gantt())
    tracer.save_chrome_trace("rl_gpu.trace.json")
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

__all__ = ["TraceEvent", "Tracer", "LANES"]

#: Timeline lanes in display order.
LANES = ("cpu", "gpu", "copy_in", "copy_out")

_LANE_CHAR = {"cpu": "=", "gpu": "#", "copy_in": ">", "copy_out": "<"}


@dataclass(frozen=True)
class TraceEvent:
    """One modeled operation occupying ``[start, end]`` on a lane.

    ``lane`` is one of :data:`LANES`; ``name`` is the operation label
    (``"potrf"``, ``"h2d"``, ``"assembly"``, ``"sync"``, ...); ``nbytes``
    is the dilated payload for transfers (0 for kernels).
    """

    lane: str
    name: str
    start: float
    end: float
    nbytes: float = 0.0

    @property
    def duration(self):
        return self.end - self.start


@dataclass
class Tracer:
    """Collects :class:`TraceEvent` records from a
    :class:`~repro.gpu.device.Timeline`.

    ``record`` is called by the timeline; everything else is read-side.
    Zero-duration events are dropped (launch overheads shorter than the
    display resolution remain visible in the Chrome trace via the host
    ``launch`` events that do have extent).
    """

    events: list = field(default_factory=list)
    counters: list = field(default_factory=list)

    def record(self, lane, name, start, end, nbytes=0.0):
        """Record one interval (ignored if empty or inverted)."""
        if end > start:
            self.events.append(TraceEvent(lane, name, float(start),
                                          float(end), float(nbytes)))

    def counter(self, lane, name, t, value):
        """Record one counter sample: series ``name`` on ``lane`` had
        ``value`` at time ``t``.

        Counters are instantaneous levels, not intervals — queue depth,
        in-flight requests, cache occupancy.  The serving gateway samples
        its admission-control state through this, so the Chrome trace shows
        the load curves stacked above the worker/stream lanes (Chrome
        ``"ph": "C"`` counter tracks)."""
        self.counters.append((lane, name, float(t), float(value)))

    def counter_samples(self, lane, name):
        """``(t, value)`` samples of one counter series, in time order."""
        return sorted((t, v) for ln, nm, t, v in self.counters
                      if ln == lane and nm == name)

    @classmethod
    def merged(cls, *tracers):
        """One tracer over the events of several.

        All inputs must share a clock origin (the hybrid engine satisfies
        this by handing ONE tracer to both the modeled timelines and the
        measured-task instrumentation, so merging is only needed when
        separate runs were traced separately).  Events keep their lanes;
        the result renders measured worker lanes next to modeled stream
        lanes in one Chrome trace / Gantt chart.
        """
        merged = cls()
        for t in tracers:
            merged.events.extend(t.events)
            merged.counters.extend(t.counters)
        return merged

    # -- queries ---------------------------------------------------------
    def lane_names(self):
        """Every lane in display order: the fixed :data:`LANES` first, then
        any dynamically recorded lanes sorted by name.  The simulated
        timelines only ever use the fixed lanes at ``devices=1``; the
        decoupled multi-device and hybrid timelines record per-device
        lanes (``gpu0``, ``copy_in0``, ``copy_out0``, ...), and the
        executors' real-occupancy instrumentation records one lane per
        worker thread (``repro-exec-0``, ... — ``repro-hybrid-0``, ... for
        the hybrid backend's measured lanes)."""
        extra = sorted({e.lane for e in self.events} - set(LANES))
        return tuple(LANES) + tuple(extra)

    def by_lane(self, lane):
        """Events on one lane, in start order."""
        return sorted((e for e in self.events if e.lane == lane),
                      key=lambda e: (e.start, e.end))

    def span(self):
        """``(t0, t1)`` covering every recorded event."""
        if not self.events:
            return (0.0, 0.0)
        return (min(e.start for e in self.events),
                max(e.end for e in self.events))

    def lane_busy(self, lane, *, include=None):
        """Total busy seconds on a lane (union of intervals, so overlapping
        records are not double counted).  ``include`` optionally filters by
        event name."""
        ivs = [(e.start, e.end) for e in self.by_lane(lane)
               if include is None or e.name in include]
        return _union_length(ivs)

    def utilization(self, lane):
        """Busy fraction of a lane over the trace span."""
        t0, t1 = self.span()
        if t1 <= t0:
            return 0.0
        return self.lane_busy(lane) / (t1 - t0)

    def overlap(self, lane_a, lane_b):
        """Seconds during which *both* lanes are busy — e.g.
        ``overlap("gpu", "copy_out")`` measures how much D2H traffic hides
        under compute (the paper's async-transfer benefit)."""
        ia = _merge([(e.start, e.end) for e in self.by_lane(lane_a)])
        ib = _merge([(e.start, e.end) for e in self.by_lane(lane_b)])
        total = 0.0
        i = j = 0
        while i < len(ia) and j < len(ib):
            lo = max(ia[i][0], ib[j][0])
            hi = min(ia[i][1], ib[j][1])
            if hi > lo:
                total += hi - lo
            if ia[i][1] < ib[j][1]:
                i += 1
            else:
                j += 1
        return total

    # -- exports ---------------------------------------------------------
    def chrome_trace(self):
        """The trace as a Chrome/Perfetto JSON-serializable list (complete
        events, microsecond timestamps).  Every lane — fixed or dynamic
        (executor worker threads) — gets its own named process row."""
        pids = {lane: i for i, lane in enumerate(self.lane_names())}
        out = [
            {"name": "process_name", "ph": "M", "pid": pid, "tid": 0,
             "args": {"name": lane}}
            for lane, pid in pids.items()
        ]
        for e in sorted(self.events, key=lambda e: e.start):
            rec = {
                "name": e.name,
                "ph": "X",
                "pid": pids[e.lane],
                "tid": 0,
                "ts": e.start * 1e6,
                "dur": e.duration * 1e6,
            }
            if e.nbytes:
                rec["args"] = {"dilated_bytes": e.nbytes}
            out.append(rec)
        counter_pids = {}
        for lane, name, t, value in sorted(self.counters, key=lambda c: c[2]):
            pid = counter_pids.get(lane)
            if pid is None:
                pid = counter_pids[lane] = len(pids) + len(counter_pids)
                out.append({"name": "process_name", "ph": "M", "pid": pid,
                            "tid": 0, "args": {"name": f"{lane} (counters)"}})
            out.append({"name": name, "ph": "C", "pid": pid, "tid": 0,
                        "ts": t * 1e6, "args": {name: value}})
        return out

    def save_chrome_trace(self, path):
        """Write the Chrome trace JSON to ``path``."""
        with open(path, "w") as fh:
            json.dump(self.chrome_trace(), fh)
        return path

    def ascii_gantt(self, *, width=88, lanes=None):
        """Render the trace as a fixed-width terminal Gantt chart.

        One row per lane; a cell is filled when the lane is busy anywhere in
        that cell's time bucket.  A scale line and per-lane utilization
        percentages are appended.  ``lanes=None`` shows every lane present
        (:meth:`lane_names`) — the fixed simulated lanes plus any executor
        worker-thread lanes.
        """
        if lanes is None:
            lanes = self.lane_names()
        t0, t1 = self.span()
        if t1 <= t0:
            return "(empty trace)"
        scale = (t1 - t0) / width
        rows = []
        for lane in lanes:
            cells = [" "] * width
            for e in self.by_lane(lane):
                lo = int((e.start - t0) / scale)
                hi = max(lo + 1, int((e.end - t0) / scale + 0.999999))
                for k in range(lo, min(hi, width)):
                    cells[k] = _LANE_CHAR.get(lane, "*")
            pct = 100.0 * self.utilization(lane)
            rows.append(f"{lane:>9} |{''.join(cells)}| {pct:5.1f}%")
        rows.append(f"{'':>9}  t = {t0:.3e} .. {t1:.3e} s "
                    f"({len(self.events)} events)")
        return "\n".join(rows)

    def summary(self):
        """Dict of per-lane busy seconds plus key overlaps."""
        out = {f"busy_{lane}": self.lane_busy(lane) for lane in LANES}
        out["overlap_gpu_copy_out"] = self.overlap("gpu", "copy_out")
        out["overlap_gpu_copy_in"] = self.overlap("gpu", "copy_in")
        out["overlap_cpu_gpu"] = self.overlap("cpu", "gpu")
        out["span"] = self.span()[1] - self.span()[0]
        return out


def _merge(intervals):
    """Merge possibly-overlapping ``(lo, hi)`` intervals."""
    out = []
    for lo, hi in sorted(intervals):
        if out and lo <= out[-1][1]:
            out[-1] = (out[-1][0], max(out[-1][1], hi))
        else:
            out.append((lo, hi))
    return out


def _union_length(intervals):
    return sum(hi - lo for lo, hi in _merge(intervals))
