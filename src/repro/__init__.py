"""repro — reproduction of *GPU Accelerated Sparse Cholesky Factorization*
(Karsavuran, Ng, Peyton; SC 2024, arXiv:2409.14009).

Right-looking supernodal sparse Cholesky in two variants — **RL** (full
update matrix + relative-index assembly) and **RLB** (blocked, in-place
updates) — with GPU offload of the large dense BLAS calls on a *simulated*
device (memory-capacity accounting, async transfers, calibrated cost model;
see DESIGN.md).

Quickstart::

    import numpy as np
    from repro import CholeskySolver
    from repro.sparse import grid_laplacian

    A = grid_laplacian((20, 20, 10))
    solver = CholeskySolver(A, method="rl_gpu")
    x = solver.solve(np.ones(A.n))

Symbolic reuse
--------------
Symbolic analysis (ordering, supernodes, relative indices) and the panel
scatter plan depend only on the sparsity pattern, so a sequence of
factorizations with fixed structure and changing values — time stepping,
parameter sweeps, re-weighted least squares — should reuse them::

    solver = CholeskySolver(A, method="rl")
    solver.factorize()                 # ordering + symbolic + numeric
    for data_t in value_stream:        # same pattern, new values
        solver.refactorize(data_t)     # numeric kernels only
        x = solver.solve(b)

Under the hood the relative-index runs, block lists and value-scatter plan
are all memoised on the :class:`~repro.symbolic.structure.SymbolicFactor`
(see ``SymbolicFactor.cache()``), so every engine — CPU and simulated-GPU —
skips the index bookkeeping on refactorization.

Subpackages
-----------
``repro.sparse``
    Symmetric CSC storage, generators, Matrix Market I/O, benchmark suite.
``repro.ordering``
    Nested dissection (METIS stand-in), minimum degree, RCM.
``repro.symbolic``
    Elimination trees, column counts, supernodes, amalgamation, partition
    refinement, relative indices, blocks.
``repro.dense``
    DPOTRF/DTRSM/DSYRK/DGEMM wrappers + flop counts.
``repro.gpu``
    Simulated device, timeline, transfer engine, cost models.
``repro.numeric``
    The factorization engines (RL, RLB, GPU variants, baselines).
``repro.solve``
    Triangular solves, solver driver, iterative refinement.
``repro.analysis``
    Performance profiles (Dolan–Moré) and report tables.
"""

from .sparse import SymmetricCSC
from .symbolic import analyze
from .solve import CholeskySolver
from .numeric import (
    factorize_rl_cpu,
    factorize_rlb_cpu,
    factorize_rl_gpu,
    factorize_rlb_gpu,
    factorize_rl_multigpu,
    factorize_multifrontal,
    rank1_update,
    plan,
)
from .gpu import SimulatedGpu, MachineModel, DeviceOutOfMemory, Tracer

__version__ = "1.1.0"

__all__ = [
    "SymmetricCSC",
    "analyze",
    "CholeskySolver",
    "factorize_rl_cpu",
    "factorize_rlb_cpu",
    "factorize_rl_gpu",
    "factorize_rlb_gpu",
    "factorize_rl_multigpu",
    "factorize_multifrontal",
    "rank1_update",
    "plan",
    "SimulatedGpu",
    "MachineModel",
    "DeviceOutOfMemory",
    "Tracer",
    "__version__",
]
