"""repro — reproduction of *GPU Accelerated Sparse Cholesky Factorization*
(Karsavuran, Ng, Peyton; SC 2024, arXiv:2409.14009).

Right-looking supernodal sparse Cholesky in two variants — **RL** (full
update matrix + relative-index assembly) and **RLB** (blocked, in-place
updates) — with GPU offload of the large dense BLAS calls on a *simulated*
device (memory-capacity accounting, async transfers, calibrated cost model;
see DESIGN.md), plus a threaded task-DAG runtime executing the real kernels.

Quickstart — the staged ``plan → Factor`` pipeline::

    import numpy as np
    import repro
    from repro.sparse import grid_laplacian

    A = grid_laplacian((20, 20, 10))
    plan = repro.plan(A)                        # symbolic analysis, once
    factor = plan.factorize(engine="rl_gpu")    # numeric factorization
    x = factor.solve(np.ones(A.n))              # triangular solves

Symbolic reuse and batched serving
----------------------------------
Symbolic analysis (ordering, supernodes, relative indices) and the panel
scatter plan depend only on the sparsity pattern, so a sequence of
factorizations with fixed structure and changing values — time stepping,
parameter sweeps, re-weighted least squares — reuses one plan::

    plan = repro.plan(A)
    for data_t in value_stream:                 # same pattern, new values
        x = plan.factorize(data_t).solve(b)     # numeric kernels only

and a whole *batch* of same-pattern matrices can be fanned out over the
threaded task-DAG worker pool in one call — the high-throughput serving
mode::

    batch = plan.factorize_batch(list_of_values, engine="rlb_par",
                                 workers=4)
    xs = batch.solve_all(b)

Under the hood the relative-index runs, block lists, task DAGs and
value-scatter plan are all memoised on the
:class:`~repro.symbolic.structure.SymbolicFactor` (see
``SymbolicFactor.cache()``), so every engine — CPU, threaded and
simulated-GPU — skips the index bookkeeping on refactorization.

The legacy mutable :class:`~repro.solve.driver.CholeskySolver`
(``analyze`` / ``factorize`` / ``refactorize`` / ``solve``) remains as a
thin facade over the staged objects; see ``docs/api.md`` for the migration
table.

Subpackages
-----------
``repro.sparse``
    Symmetric CSC storage, generators, Matrix Market I/O, benchmark suite.
``repro.ordering``
    Nested dissection (METIS stand-in), minimum degree, RCM.
``repro.symbolic``
    Elimination trees, column counts, supernodes, amalgamation, partition
    refinement, relative indices, blocks.
``repro.dense``
    DPOTRF/DTRSM/DSYRK/DGEMM wrappers + flop counts.
``repro.gpu``
    Simulated device, timeline, transfer engine, cost models.
``repro.numeric``
    The factorization engines (RL, RLB, threaded DAG, GPU variants,
    baselines) and the unified engine registry.
``repro.solve``
    Triangular solves, the legacy solver facade, iterative refinement.
``repro.analysis``
    Performance profiles (Dolan–Moré) and report tables.
"""

from .sparse import SymmetricCSC
from .symbolic import analyze, pattern_fingerprint
from .solve import CholeskySolver
from .numeric import (
    factorize_rl_cpu,
    factorize_rlb_cpu,
    factorize_rl_gpu,
    factorize_rlb_gpu,
    factorize_rl_multigpu,
    factorize_multifrontal,
    rank1_update,
    rank_k_update,
)
from .numeric import plan as memory_plan
from .numeric.registry import ENGINES, engine_names, get_engine
from .dense import NotPositiveDefiniteError
from .gpu import SimulatedGpu, MachineModel, DeviceOutOfMemory, Tracer
from .api import (
    plan,
    SymbolicPlan,
    SolvePlan,
    Factor,
    FactorBatch,
    ServingSession,
)

__version__ = "1.2.0"

__all__ = [
    "SymmetricCSC",
    "analyze",
    "pattern_fingerprint",
    "plan",
    "SymbolicPlan",
    "SolvePlan",
    "Factor",
    "FactorBatch",
    "ServingSession",
    "CholeskySolver",
    "ENGINES",
    "engine_names",
    "get_engine",
    "NotPositiveDefiniteError",
    "factorize_rl_cpu",
    "factorize_rlb_cpu",
    "factorize_rl_gpu",
    "factorize_rlb_gpu",
    "factorize_rl_multigpu",
    "factorize_multifrontal",
    "rank1_update",
    "rank_k_update",
    "memory_plan",
    "SimulatedGpu",
    "MachineModel",
    "DeviceOutOfMemory",
    "Tracer",
    "__version__",
]
