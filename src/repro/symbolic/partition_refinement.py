"""Partition-refinement reordering of columns within supernodes.

Reordering the columns *inside* a supernode changes neither the fill nor the
supernode partition (paper's refs [11], [12]), but it renumbers rows — and
therefore controls how many *consecutive-row blocks* every descendant
supernode's row set splits into.  Fewer, longer blocks mean fewer BLAS calls
in RLB, which is why the paper calls this step "essential to attain high
performance using RLB".

Three methods are provided (the paper's ref [12] is precisely "a comparison
of two effective methods for reordering columns within supernodes"):

* ``"lex"`` — for each supernode ``P``, each descendant ``J`` whose rows
  intersect ``cols(P)`` contributes a 0/1 membership row; columns of ``P``
  are sorted lexicographically by their membership patterns with larger
  descendants as more significant keys.  Because descendant row sets within
  an ancestor are near-laminar (they follow subtrees of the elimination
  tree), equal/nested patterns become contiguous and most descendant sets
  collapse to single runs.
* ``"split"`` — classical ordered partition refinement: every descendant row
  set splits each class it straddles into (out, in) halves kept adjacent;
  stability preserves the natural order inside classes.
* ``"best"`` (default) — the column order of each supernode only affects the
  runs of the segments that land in *that* supernode, so the choice is
  independent per supernode: evaluate the exact block (run) count each
  candidate order induces — natural, lex, split — and keep the minimum.
  Guarded this way, refinement can never increase the total block count
  (the natural order is always a candidate).

All methods return a permutation that is block-diagonal with respect to
``snptr``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["partition_refinement", "segment_runs"]


def _pivot_segments(symb):
    """For each supernode ``P``: the list of descendant row sets restricted
    to ``cols(P)`` (as global column index arrays)."""
    touch = [[] for _ in range(symb.nsup)]
    col2sn = symb.col2sn
    for j in range(symb.nsup):
        below = symb.snode_below_rows(j)
        if below.size == 0:
            continue
        owners = col2sn[below]
        cut = np.flatnonzero(np.diff(owners)) + 1
        for seg in np.split(below, cut):
            touch[int(col2sn[seg[0]])].append(seg)
    return touch


def segment_runs(segs, local_order, w):
    """Total number of consecutive runs the segments split into when the
    supernode's columns are permuted by ``local_order``.

    ``segs`` hold *local* column indices (``0..w-1``); ``local_order[k]`` is
    the local column placed at position ``k``.  This is exactly the number
    of RLB blocks these segments will contribute.
    """
    inv = np.empty(w, dtype=np.int64)
    inv[local_order] = np.arange(w)
    total = 0
    for seg in segs:
        pos = np.sort(inv[seg])
        total += 1 + int(np.count_nonzero(np.diff(pos) != 1))
    return total


def _order_lex(segs, w):
    """Lexicographic membership-pattern order (local)."""
    keys = np.zeros((len(segs), w), dtype=np.int8)
    for i, seg in enumerate(segs):
        keys[i, seg] = 1
    sizes = keys.sum(axis=1)
    order = np.argsort(-sizes, kind="stable")  # big sets most significant
    keys = keys[order]
    # np.lexsort treats the *last* row as the primary key
    return np.lexsort(keys[::-1])


def _order_split(segs, w):
    """Ordered-partition-refinement order (local)."""
    classes = [np.arange(w, dtype=np.int64)]
    for seg in sorted(segs, key=len, reverse=True):
        if len(classes) == w:
            break
        new = []
        for q in classes:
            if q.size == 1:
                new.append(q)
                continue
            mask = np.isin(q, seg, assume_unique=True)
            if mask.all() or not mask.any():
                new.append(q)
            else:
                new.append(q[~mask])
                new.append(q[mask])
        classes = new
    return np.concatenate(classes)


def _candidate_orders(method, segs, w):
    if method == "lex":
        return [_order_lex(segs, w)]
    if method == "split":
        return [_order_split(segs, w)]
    # "best": natural order is always a candidate, so the guarded choice
    # never increases the block count.
    return [np.arange(w, dtype=np.int64), _order_lex(segs, w),
            _order_split(segs, w)]


def partition_refinement(symb, *, method="best", pivot_order=None):
    """Compute the within-supernode refinement permutation.

    Parameters
    ----------
    symb:
        :class:`~repro.symbolic.structure.SymbolicFactor` of the current
        (merged) partition.
    method:
        ``"best"`` (guarded minimum over natural/lex/split, default),
        ``"lex"`` (membership-pattern lexicographic sort) or ``"split"``
        (classical class splitting).
    pivot_order:
        Deprecated alias kept for API stability; ignored.

    Returns
    -------
    perm:
        ``int64`` permutation (``perm[k]`` = current column index placed at
        position ``k``); columns never leave their supernode.
    """
    if method not in ("best", "lex", "split"):
        raise ValueError("method must be 'best', 'lex' or 'split'")
    perm = np.empty(symb.n, dtype=np.int64)
    touch = _pivot_segments(symb)
    for s in range(symb.nsup):
        first, last = symb.snode_cols(s)
        w = last - first
        segs = [seg - first for seg in touch[s]]
        if not segs or w == 1:
            perm[first:last] = np.arange(first, last)
            continue
        orders = _candidate_orders(method, segs, w)
        if len(orders) == 1:
            best = orders[0]
        else:
            best = min(orders, key=lambda o: segment_runs(segs, o, w))
        perm[first:last] = first + best
    return perm
