"""Column counts of the Cholesky factor, without forming its structure.

``column_counts`` implements the Gilbert–Ng–Peyton skeleton/least-common-
ancestor algorithm (the one in CSparse's ``cs_counts``), which runs in nearly
O(|A|) time: each strictly-lower entry ``a_ij`` is tested for being a leaf of
the row subtree ``T_i`` via first-descendant numbers, and overlap between
consecutive leaves is subtracted at their LCA (found with path compression).

``column_counts_reference`` is the brute-force symbolic-elimination version
used as the test oracle.
"""

from __future__ import annotations

import numpy as np

from .etree import first_descendants, postorder

__all__ = ["column_counts", "column_counts_reference"]


def column_counts(A, parent, post=None):
    """Counts ``|struct(L_{*,j})|`` (including the diagonal) for each j.

    Parameters
    ----------
    A:
        :class:`~repro.sparse.csc.SymmetricCSC` (lower triangle).
    parent:
        Elimination tree of ``A``.
    post:
        Optional postorder of ``parent`` (computed when omitted).
    """
    n = A.n
    if post is None:
        post = postorder(parent)
    first = first_descendants(parent, post)
    # delta[j] = 1 iff j is a leaf of the elimination tree
    delta = np.zeros(n, dtype=np.int64)
    childcount = np.zeros(n, dtype=np.int64)
    has_parent = parent >= 0
    np.add.at(childcount, parent[has_parent], 1)
    delta[childcount == 0] = 1
    maxfirst = np.full(n, -1, dtype=np.int64)
    prevleaf = np.full(n, -1, dtype=np.int64)
    ancestor = np.arange(n, dtype=np.int64)
    indptr, indices = A.indptr, A.indices
    for k in range(n):
        j = int(post[k])
        if parent[j] != -1:
            delta[parent[j]] -= 1  # child subtree overlaps parent's diagonal
        for p in range(indptr[j] + 1, indptr[j + 1]):  # strictly-lower of col j
            i = int(indices[p])
            if first[j] > maxfirst[i]:
                # j is a new leaf of the row subtree T_i
                delta[j] += 1
                maxfirst[i] = first[j]
                q = int(prevleaf[i])
                if q != -1:
                    # LCA(prevleaf[i], j) via path compression on `ancestor`
                    r = q
                    while r != ancestor[r]:
                        r = int(ancestor[r])
                    # compress the path q -> r
                    while q != r:
                        nxt = int(ancestor[q])
                        ancestor[q] = r
                        q = nxt
                    delta[r] -= 1  # subtract the overlap counted twice
                prevleaf[i] = j
        if parent[j] != -1:
            ancestor[j] = parent[j]
    counts = delta
    for k in range(n):
        j = int(post[k])
        if parent[j] != -1:
            counts[parent[j]] += counts[j]
    return counts


def column_counts_reference(A, parent=None):
    """O(|L|)-memory brute force: build each column's structure bottom-up
    (``struct(j) = A-struct(j) ∪ ⋃_child struct(child) \\ {child}``) and
    return its size.  Quadratic-ish; for tests only."""
    from .etree import elimination_tree

    n = A.n
    if parent is None:
        parent = elimination_tree(A)
    structs = [None] * n
    counts = np.zeros(n, dtype=np.int64)
    for j in range(n):
        rows = A.indices[A.indptr[j]:A.indptr[j + 1]]
        s = set(int(r) for r in rows)
        if structs[j] is not None:
            s |= structs[j]
        s.add(j)
        counts[j] = len(s)
        p = parent[j]
        if p >= 0:
            s.discard(j)
            if structs[p] is None:
                structs[p] = s
            else:
                structs[p] |= s
        structs[j] = None
    return counts
