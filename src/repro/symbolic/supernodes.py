"""Fundamental supernode detection (Liu–Ng–Peyton, paper's ref [7]).

A supernode is a maximal set of *consecutive* columns ``{f, ..., l}`` of the
factor such that each column's structure nests into the next:
``struct(j) = struct(j+1) ∪ {j}``.  On a postordered matrix this is detected
purely from the elimination tree and column counts:

column ``j`` extends the supernode of ``j - 1`` iff

* ``parent[j-1] == j`` (chain in the etree),
* ``cc[j-1] == cc[j] + 1`` (structures nest exactly), and
* ``j - 1`` is the only child of ``j`` (*fundamental* condition; without it
  one gets the maximal supernode partition).

The partition is returned as ``snptr`` (length ``nsup + 1``): supernode ``s``
owns columns ``snptr[s]:snptr[s+1]``.
"""

from __future__ import annotations

import numpy as np

from .etree import is_postordered

__all__ = ["fundamental_supernodes", "snode_of_column", "validate_snptr"]


def fundamental_supernodes(parent, counts, *, fundamental=True):
    """Compute the supernode partition from etree + column counts.

    Parameters
    ----------
    parent:
        Elimination tree of the (postordered) matrix.
    counts:
        Column counts of its factor.
    fundamental:
        When true (default) require the only-child condition, giving
        fundamental supernodes; when false, the maximal partition.

    Returns
    -------
    snptr:
        ``int64`` array of supernode column boundaries.
    """
    n = parent.size
    if n == 0:
        return np.zeros(1, dtype=np.int64)
    if not is_postordered(parent):
        raise ValueError("matrix must be postordered before supernode detection")
    childcount = np.zeros(n, dtype=np.int64)
    has_parent = parent >= 0
    np.add.at(childcount, parent[has_parent], 1)
    boundaries = [0]
    for j in range(1, n):
        chain = parent[j - 1] == j and counts[j - 1] == counts[j] + 1
        if fundamental:
            chain = chain and childcount[j] == 1
        if not chain:
            boundaries.append(j)
    boundaries.append(n)
    return np.asarray(boundaries, dtype=np.int64)


def snode_of_column(snptr, n=None):
    """Map each column to its supernode id (inverse of ``snptr``)."""
    if n is None:
        n = int(snptr[-1])
    col2sn = np.empty(n, dtype=np.int64)
    for s in range(snptr.size - 1):
        col2sn[snptr[s]:snptr[s + 1]] = s
    return col2sn


def validate_snptr(snptr, n):
    """Raise ``ValueError`` unless ``snptr`` is a valid partition of 0..n."""
    snptr = np.asarray(snptr)
    if snptr.ndim != 1 or snptr.size < 1:
        raise ValueError("snptr must be a 1-D array of length >= 1")
    if snptr[0] != 0 or snptr[-1] != n:
        raise ValueError("snptr must start at 0 and end at n")
    if np.any(np.diff(snptr) < 1):
        raise ValueError("snptr must be strictly increasing")
