"""Consecutive-row blocks of supernode panels — the unit of work of RLB.

RLB decomposes a supernode's below-diagonal rows into *blocks*: maximal runs
of consecutive row indices, further split so that every block lies within a
single ancestor supernode's column range.  Each (block, block') pair then
becomes one DSYRK or DGEMM call, and — because a run of consecutive global
rows is necessarily contiguous inside any ancestor panel that contains it —
each block needs only a *single* offset into the target panel (the paper's
"one generalized relative index per block").

The number of blocks directly controls RLB's BLAS-call count, which is why
the partition-refinement reordering exists.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Block", "snode_blocks", "all_blocks", "count_blocks"]


@dataclass(frozen=True)
class Block:
    """One consecutive-row block of a supernode panel.

    Attributes
    ----------
    panel_start:
        Offset of the block's first row inside the owning supernode's row
        list (diagonal block included, so the below part starts at
        ``ncols``).
    length:
        Number of rows.
    first_row:
        Global index of the first row (rows are ``first_row ..
        first_row+length-1``).
    owner:
        Supernode whose *columns* contain these row indices (the update
        target when this block is the upper block of a pair).
    """

    panel_start: int
    length: int
    first_row: int
    owner: int


def snode_blocks(symb, s):
    """Blocks of supernode ``s``'s below-diagonal rows.

    Returns a tuple of :class:`Block` in increasing row order.  Splits occur
    where row indices stop being consecutive and where the owning supernode
    changes.  Split points are found with vectorised ``diff`` comparisons and
    the resulting tuple is memoised on the symbolic factor (the block
    decomposition is pure structure, reused across numeric factorizations).
    """
    cache = symb.cache().setdefault("snode_blocks", {})
    blocks = cache.get(s)
    if blocks is not None:
        return blocks
    below = symb.snode_below_rows(s)
    if below.size == 0:
        cache[s] = ()
        return cache[s]
    w = symb.snode_ncols(s)
    owners = symb.col2sn[below]
    cut = np.flatnonzero((np.diff(below) != 1) | (np.diff(owners) != 0)) + 1
    starts = np.concatenate(([0], cut))
    ends = np.concatenate((cut, [below.size]))
    # an immutable tuple: the cached value is shared across factorizations
    blocks = tuple(
        Block(
            panel_start=w + int(a),
            length=int(b - a),
            first_row=int(below[a]),
            owner=int(owners[a]),
        )
        for a, b in zip(starts, ends)
    )
    cache[s] = blocks
    return blocks


def all_blocks(symb):
    """``snode_blocks`` for every supernode (list of tuples)."""
    return [snode_blocks(symb, s) for s in range(symb.nsup)]


def count_blocks(symb):
    """Total number of blocks across all supernodes — RLB's BLAS-call-count
    driver and the quantity partition refinement minimises."""
    return sum(len(snode_blocks(symb, s)) for s in range(symb.nsup))
