"""Elimination-tree level schedule for the supernodal triangular solves.

The forward sweep ``L y = b`` has exactly the elimination tree's dependency
structure: supernode ``J`` may solve its diagonal block only after every
*descendant* whose below-diagonal rows reach into ``J``'s columns has
subtracted its contribution, and ``J``'s own GEMV then updates segments of
``y`` owned by ``J``'s ancestors.  Grouping supernodes by tree depth from
the leaves yields the classical *level schedule*: every supernode in level
``ℓ`` depends only on supernodes in levels ``< ℓ``, so whole levels are
independent solve tasks (the backward sweep runs the same schedule in
reverse).  The number of levels is the height of the supernodal elimination
tree; the width of each level bounds the exploitable task parallelism.

:func:`solve_schedule` computes everything the parallel sweeps need —
levels, per-supernode update *runs* (which ancestor owns which slice of the
below rows) and both dependency directions — once per pattern, memoised on
:meth:`SymbolicFactor.cache() <repro.symbolic.structure.SymbolicFactor.cache>`
like the factorization task-DAG plans, so repeated solves (many right-hand
sides, streaming serving) do no structural work.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["SolveSchedule", "solve_schedule", "solve_levels"]


def solve_levels(symb):
    """Level of every supernode in the supernodal elimination tree.

    ``level[s] = 0`` for leaves, otherwise ``1 + max(level of children)`` —
    the earliest forward-solve round in which ``s`` can run.  One ascending
    pass suffices because the analyzed system is postordered (children
    precede parents).
    """
    level = np.zeros(symb.nsup, dtype=np.int64)
    parent = symb.sn_parent
    for s in range(symb.nsup):
        p = parent[s]
        if p >= 0:
            level[p] = max(level[p], level[s] + 1)
    return level


@dataclass(frozen=True)
class SolveSchedule:
    """Pattern-only schedule of the level-scheduled triangular solves.

    Attributes
    ----------
    level:
        Forward level per supernode (leaves = 0); the backward sweep uses
        the same levels in descending order.
    level_ptr / level_nodes:
        CSR grouping of supernodes by level: level ``ℓ`` holds
        ``level_nodes[level_ptr[ℓ]:level_ptr[ℓ+1]]`` (ascending supernode
        ids, the serial sweep order within a level).
    runs:
        Per supernode ``s``, a tuple of ``(owner, lo, hi)`` triples: slice
        ``lo:hi`` of ``s``'s below-diagonal row list is owned by ancestor
        supernode ``owner`` (rows are sorted, so owners form contiguous
        runs).  These are the forward sweep's scatter targets and the
        backward sweep's read dependencies.
    fwd_expected:
        ``{target: {source: 1}}`` — the forward sweep's ordered-commit
        contract (one update run per (source, target) pair), same shape as
        the factorization DAG plans consume.
    fwd_roots:
        Supernodes with no incoming forward updates (initially ready).
    fwd_static / bwd_static / fused_static:
        The same contracts pre-finalized for
        :meth:`OrderedCommitter.from_static
        <repro.numeric.executor.OrderedCommitter.from_static>`: tuples of
        ``(target, ascending source order, expected counts)``.  Sorting
        and dict-building happen once per pattern, so per-solve committer
        construction is a thin per-run-counter wrapper — this keeps
        repeated solves (many-RHS serving) off the graph-build cost.
        ``fused_static`` is the *combined* full-solve graph's backward
        half: backward task ``s`` (id ``nsup + s``) waits for its own
        forward task (source ``-1``) plus its ancestors' backward tasks,
        so one task graph runs both sweeps on one pool, overlapping the
        backward leaves with the forward root.
    bwd_dependents:
        ``{ancestor: (dependents...)}`` — supernodes whose backward task
        becomes ready once ``ancestor``'s segment of ``x`` is final.
    bwd_roots:
        Supernodes with no below-diagonal rows (tree roots; initially ready
        in the backward sweep).
    """

    level: np.ndarray
    level_ptr: np.ndarray
    level_nodes: np.ndarray
    runs: tuple
    fwd_expected: dict
    fwd_roots: tuple
    fwd_static: tuple
    bwd_dependents: dict
    bwd_roots: tuple
    bwd_static: tuple
    fused_static: tuple

    @property
    def nlevels(self):
        """Height of the schedule (number of solve rounds per sweep)."""
        return int(self.level_ptr.size - 1)

    def level_supernodes(self, lev):
        """Supernodes of level ``lev`` (ascending ids)."""
        return self.level_nodes[self.level_ptr[lev]:self.level_ptr[lev + 1]]

    def level_widths(self):
        """Supernodes per level — the task-parallelism profile."""
        return np.diff(self.level_ptr)

    @property
    def max_width(self):
        """Widest level: the peak number of independent solve tasks."""
        return int(self.level_widths().max())

    @property
    def avg_width(self):
        """Mean level width — the average exploitable parallelism."""
        return float(self.level.size / self.nlevels)


def _below_runs(symb, s):
    """Contiguous same-owner runs of ``s``'s below-diagonal rows."""
    below = symb.snode_below_rows(s)
    if not below.size:
        return ()
    owners = symb.col2sn[below]
    cuts = np.flatnonzero(owners[1:] != owners[:-1]) + 1
    bounds = np.concatenate(([0], cuts, [owners.size]))
    return tuple(
        (int(owners[bounds[i]]), int(bounds[i]), int(bounds[i + 1]))
        for i in range(bounds.size - 1)
    )


def solve_schedule(symb):
    """The :class:`SolveSchedule` of ``symb``, memoised on its cache."""
    cache = symb.cache()
    sched = cache.get("solve_schedule")
    if sched is not None:
        return sched
    nsup = symb.nsup
    level = solve_levels(symb)
    nlevels = int(level.max()) + 1 if nsup else 0
    level_ptr = np.zeros(nlevels + 1, dtype=np.int64)
    np.add.at(level_ptr, level + 1, 1)
    np.cumsum(level_ptr, out=level_ptr)
    # stable ascending-id order within each level (the serial sweep order)
    level_nodes = np.argsort(level, kind="stable").astype(np.int64)

    runs = tuple(_below_runs(symb, s) for s in range(nsup))
    fwd_expected = {}
    bwd_dependents = {}
    for s in range(nsup):
        for p, _, _ in runs[s]:
            fwd_expected.setdefault(p, {})[s] = 1
            bwd_dependents.setdefault(p, []).append(s)
    fwd_roots = tuple(s for s in range(nsup) if s not in fwd_expected)
    bwd_roots = tuple(s for s in range(nsup) if not runs[s])
    # pre-finalized OrderedCommitter contracts (ascending-source order;
    # sources/owners of sorted runs are naturally ascending already)
    fwd_static = tuple(
        (target, tuple(sorted(sources)), sources)
        for target, sources in fwd_expected.items()
    )
    bwd_static = tuple(
        (s, tuple(p for p, _, _ in runs[s]), {p: 1 for p, _, _ in runs[s]})
        for s in range(nsup) if runs[s]
    )
    # fused full-solve graph: backward task s (id nsup + s) additionally
    # waits for its own forward task, encoded as pseudo-source -1 (sorts
    # before every real supernode id; commit order is irrelevant — the
    # backward dependencies are no-op closures)
    fused_static = tuple(
        (nsup + s,
         (-1,) + tuple(p for p, _, _ in runs[s]),
         {-1: 1, **{p: 1 for p, _, _ in runs[s]}})
        for s in range(nsup)
    )
    sched = SolveSchedule(
        level=level,
        level_ptr=level_ptr,
        level_nodes=level_nodes,
        runs=runs,
        fwd_expected=fwd_expected,
        fwd_roots=fwd_roots,
        fwd_static=fwd_static,
        bwd_dependents={p: tuple(d) for p, d in bwd_dependents.items()},
        bwd_roots=bwd_roots,
        bwd_static=bwd_static,
        fused_static=fused_static,
    )
    cache["solve_schedule"] = sched
    return sched
