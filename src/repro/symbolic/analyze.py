"""The full symbolic pipeline of the paper's §IV-A, as one call.

``analyze(A)`` performs: fill-reducing ordering (nested dissection by
default, like the paper's METIS step) → elimination tree → postorder →
column counts → fundamental supernodes → relaxed amalgamation (25 % storage
cap) → partition refinement of columns within supernodes → final supernodal
symbolic factorization.  The result bundles the composed permutation, the
permuted matrix and the :class:`~repro.symbolic.structure.SymbolicFactor`
that every numeric factorization consumes.

This is the *symbolic stage* of the staged pipeline API: ``repro.plan(A)``
wraps the :class:`AnalyzedSystem` returned here in a
:class:`~repro.api.SymbolicPlan` that additionally owns the numeric-side
pattern caches (permutation gather, panel scatter plan, task DAGs) and
serves any number of same-pattern factorizations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..sparse.permute import compose_permutations, symmetric_permute
from .amalgamate import amalgamate
from .colcounts import column_counts
from .etree import elimination_tree, postorder
from .partition_refinement import partition_refinement
from .structure import SymbolicFactor, symbolic_factorization
from .supernodes import fundamental_supernodes

__all__ = ["AnalyzedSystem", "analyze"]


@dataclass
class AnalyzedSystem:
    """Output of the symbolic pipeline.

    Attributes
    ----------
    perm:
        Composed permutation: ``perm[k]`` is the original index of the row /
        column at position ``k`` of the permuted system.
    matrix:
        ``P A P^T`` — the permuted input, ready for numeric factorization.
    symb:
        Supernodal symbolic factorization of ``matrix``.
    """

    perm: np.ndarray
    matrix: "object"
    symb: SymbolicFactor

    @property
    def n(self):
        """Matrix dimension."""
        return self.symb.n

    @property
    def nsup(self):
        """Number of supernodes after merging."""
        return self.symb.nsup


def analyze(A, *, ordering="nd", merge=True, refine=True, growth_cap=0.25,
            fundamental=True, ordering_kwargs=None,
            refine_method="best"):
    """Run the paper's preprocessing pipeline on ``A``.

    Parameters
    ----------
    A:
        :class:`~repro.sparse.csc.SymmetricCSC`.
    ordering:
        Fill-reducing ordering (``"nd"`` | ``"mindeg"`` | ``"rcm"`` |
        ``"natural"``); the paper uses METIS nested dissection.
    merge:
        Apply relaxed supernode amalgamation (paper: on).
    refine:
        Apply partition-refinement column reordering within supernodes
        (paper: on — "essential" for RLB).
    growth_cap:
        Storage-growth cap for amalgamation (paper: 0.25).
    fundamental:
        Detect fundamental (vs merely maximal) supernodes.
    ordering_kwargs:
        Extra arguments for the ordering algorithm.
    refine_method:
        Partition-refinement method (``"best"`` | ``"lex"`` | ``"split"``).
    """
    from ..ordering import order_matrix

    perm = order_matrix(A, ordering, **(ordering_kwargs or {}))
    B = symmetric_permute(A, perm)
    parent = elimination_tree(B)
    post = postorder(parent)
    perm = compose_permutations(post, perm)
    B = symmetric_permute(A, perm)
    parent = elimination_tree(B)
    counts = column_counts(B, parent)
    snptr = fundamental_supernodes(parent, counts, fundamental=fundamental)
    symb = symbolic_factorization(B, snptr)
    if merge:
        snptr = amalgamate(symb, growth_cap=growth_cap)
        symb = symbolic_factorization(B, snptr)
    if refine:
        rperm = partition_refinement(symb, method=refine_method)
        perm = compose_permutations(rperm, perm)
        B = symmetric_permute(A, perm)
        symb = symbolic_factorization(B, snptr)
    return AnalyzedSystem(perm=perm, matrix=B, symb=symb)
