"""ASCII rendering and shape statistics of supernodal elimination trees.

The shape of the supernodal elimination tree decides everything downstream:
wide independent subtrees mean parallelism (multi-GPU gains, multifrontal
stack reuse), a heavy separator chain near the root means the offloaded
work serializes, and the per-depth panel sizes are exactly what the
CPU/GPU threshold slices.  ``render_tree`` draws the tree (largest panels
first, optionally truncated), ``tree_stats`` summarizes depth, branching
and where the flops live.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["render_tree", "tree_stats", "TreeStats"]


@dataclass
class TreeStats:
    """Shape summary of a supernodal elimination tree.

    ``work_by_depth`` maps depth (root = 0) to total factor flops, the
    quantity whose concentration near the root limits tree parallelism.
    """

    nsup: int
    height: int
    nroots: int
    nleaves: int
    max_children: int
    work_by_depth: dict
    top_heavy_fraction: float

    def summary_lines(self):
        """Human-readable summary rows (label, value)."""
        return [
            ("supernodes", str(self.nsup)),
            ("tree height", str(self.height)),
            ("roots / leaves", f"{self.nroots} / {self.nleaves}"),
            ("max children", str(self.max_children)),
            ("flops in top 3 levels",
             f"{100 * self.top_heavy_fraction:.0f}%"),
        ]


def _depths(symb):
    depth = np.zeros(symb.nsup, dtype=np.int64)
    # supernodes are topologically ordered (children before parents), so a
    # reverse sweep assigns root depth 0 downwards
    for s in range(symb.nsup - 1, -1, -1):
        p = int(symb.sn_parent[s])
        depth[s] = 0 if p < 0 else -1  # placeholder
    for s in range(symb.nsup - 1, -1, -1):
        p = int(symb.sn_parent[s])
        depth[s] = 0 if p < 0 else depth[p] + 1
    return depth


def _snode_flops(symb, s):
    m, w = symb.panel_shape(s)
    b = m - w
    return w ** 3 // 3 + w ** 2 * b + w * b * b


def tree_stats(symb):
    """Compute :class:`TreeStats` for a symbolic factorization."""
    depth = _depths(symb)
    children = symb.children()
    nroots = int(np.count_nonzero(symb.sn_parent < 0))
    nleaves = sum(1 for c in children if c.size == 0)
    work = {}
    total = 0.0
    for s in range(symb.nsup):
        f = _snode_flops(symb, s)
        work[int(depth[s])] = work.get(int(depth[s]), 0.0) + f
        total += f
    top = sum(work.get(d, 0.0) for d in (0, 1, 2))
    return TreeStats(
        nsup=symb.nsup,
        height=int(depth.max()) + 1 if symb.nsup else 0,
        nroots=nroots,
        nleaves=nleaves,
        max_children=max((c.size for c in children), default=0),
        work_by_depth=work,
        top_heavy_fraction=top / total if total else 0.0,
    )


def render_tree(symb, *, max_nodes=40, max_depth=None):
    """Draw the supernodal elimination tree as indented ASCII.

    Nodes are labelled ``s: m x w  [flops]``; at each level children are
    shown largest-first and the tail beyond ``max_nodes`` total nodes is
    elided with a count.  Forests (multiple roots) render root by root.
    """
    children = symb.children()
    roots = [s for s in range(symb.nsup) if symb.sn_parent[s] < 0]
    lines = []
    shown = 0
    elided = 0

    def visit(s, prefix, is_last, depth):
        nonlocal shown, elided
        if shown >= max_nodes or (max_depth is not None
                                  and depth > max_depth):
            elided += 1 + sum(1 for _ in _descendants(children, s))
            return
        m, w = symb.panel_shape(s)
        tag = "`-" if is_last else "|-"
        head = prefix + tag if prefix or not is_last or depth else ""
        lines.append(f"{prefix}{tag}{s}: {m}x{w}  "
                     f"[{_snode_flops(symb, s):.2e} flops]")
        shown += 1
        kids = sorted(children[s].tolist(),
                      key=lambda c: -symb.panel_size(c))
        ext = prefix + ("  " if is_last else "| ")
        for i, c in enumerate(kids):
            visit(c, ext, i == len(kids) - 1, depth + 1)

    for i, r in enumerate(sorted(roots, key=lambda s: -symb.panel_size(s))):
        visit(r, "", i == len(roots) - 1, 0)
    if elided:
        lines.append(f"... ({elided} more supernodes elided)")
    return "\n".join(lines)


def _descendants(children, s):
    stack = list(children[s])
    while stack:
        c = int(stack.pop())
        yield c
        stack.extend(children[c])
