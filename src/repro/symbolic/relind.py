"""Relative indices (Schreiber, paper's ref [3]).

When supernode ``J`` updates an ancestor ``P``, every affected global row
``i`` must be located inside ``P``'s dense panel.  The *relative index* of
``i`` w.r.t. ``P`` is its position in ``rowind(P)``; computing these once per
(descendant, ancestor) interaction turns scattered updates into fancy-indexed
NumPy scatter-adds (the paper's Fortran code uses them to drive assembly
loops).

The paper's RL variant uses *generalized relative indices* — relative indices
of an arbitrary subset of ``J``'s rows w.r.t. any ancestor — while RLB only
needs a single offset per consecutive-row block (see
:mod:`repro.symbolic.blocks`).
"""

from __future__ import annotations

import numpy as np

__all__ = ["relative_indices", "relative_indices_bottom", "assembly_plan"]


def relative_indices(symb, global_rows, ancestor):
    """Positions of ``global_rows`` within ``rowind(ancestor)``.

    Parameters
    ----------
    symb:
        :class:`~repro.symbolic.structure.SymbolicFactor`.
    global_rows:
        Sorted array of global row indices, each of which must be present in
        the ancestor's row list (guaranteed by the subset property of the
        elimination tree for update targets).
    ancestor:
        Supernode id of the ancestor ``P``.

    Returns
    -------
    ``int64`` array of positions (0 = top of ``P``'s panel).
    """
    prows = symb.snode_rows(ancestor)
    pos = np.searchsorted(prows, global_rows)
    if pos.size and (pos.max() >= prows.size or
                     not np.array_equal(prows[pos], global_rows)):
        raise ValueError(
            "rows are not contained in the ancestor's structure; "
            "symbolic factorization is inconsistent"
        )
    return pos


def assembly_plan(symb, s):
    """Cached per-ancestor scatter runs for RL assembly of supernode ``s``.

    The below-diagonal rows of ``s`` are grouped into maximal runs owned by a
    single ancestor supernode (the loop nest of
    :func:`repro.numeric.rl.assemble_update`).  For each run the generalized
    relative indices of the *remaining tail* of rows w.r.t. that ancestor are
    precomputed once per symbolic factor, so repeated numeric factorizations
    pay no ``searchsorted`` cost.

    Returns
    -------
    Tuple of ``(ancestor, k0, k1, rel_rows_col, col_positions, nbytes)``
    runs, where ``rel_rows_col`` is the ``(tail, 1)``-shaped relative row
    index array (ready for broadcasted fancy indexing against
    ``col_positions``) and ``nbytes`` is the read+write traffic of the run
    for the assembly cost model.
    """
    cache = symb.cache().setdefault("assembly_plan", {})
    plan = cache.get(s)
    if plan is not None:
        return plan
    below = symb.snode_below_rows(s)
    if below.size == 0:
        cache[s] = ()
        return cache[s]
    owners = symb.col2sn[below]
    cut = np.flatnonzero(np.diff(owners)) + 1
    starts = np.concatenate(([0], cut))
    ends = np.concatenate((cut, [below.size]))
    runs = []
    for k0, k1 in zip(starts, ends):
        p = int(owners[k0])
        colpos = below[k0:k1] - symb.snptr[p]
        relrows = relative_indices(symb, below[k0:], p)
        nbytes = 2 * 8 * (below.size - int(k0)) * int(k1 - k0)
        runs.append((p, int(k0), int(k1), relrows[:, None], colpos, nbytes))
    cache[s] = tuple(runs)
    return cache[s]


def relative_indices_bottom(symb, global_rows, ancestor):
    """The paper's Figure-1 convention: distance of each row from the
    *bottom* of the ancestor's index set (``relind(J1,J3) = [9,8,1]`` style).

    Provided for parity with the paper's notation and used in documentation
    examples; the factorization kernels use top-based positions.
    """
    prows = symb.snode_rows(ancestor)
    return prows.size - 1 - relative_indices(symb, global_rows, ancestor)
