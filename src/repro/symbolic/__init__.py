"""Symbolic analysis: elimination trees, column counts, supernodes,
amalgamation, partition refinement, relative indices, block partitions and
the end-to-end :func:`analyze` pipeline."""

from .etree import (
    elimination_tree,
    postorder,
    children_lists,
    etree_heights,
    is_postordered,
    first_descendants,
)
from .colcounts import column_counts, column_counts_reference
from .supernodes import fundamental_supernodes, snode_of_column, validate_snptr
from .amalgamate import amalgamate, merge_extra_fill
from .treeviz import render_tree, tree_stats, TreeStats
from .structure import SymbolicFactor, pattern_fingerprint, symbolic_factorization
from .relind import assembly_plan, relative_indices, relative_indices_bottom
from .blocks import Block, snode_blocks, all_blocks, count_blocks
from .partition_refinement import partition_refinement
from .levels import SolveSchedule, solve_levels, solve_schedule
from .analyze import AnalyzedSystem, analyze

__all__ = [
    "render_tree",
    "tree_stats",
    "TreeStats",
    "elimination_tree",
    "postorder",
    "children_lists",
    "etree_heights",
    "is_postordered",
    "first_descendants",
    "column_counts",
    "column_counts_reference",
    "fundamental_supernodes",
    "snode_of_column",
    "validate_snptr",
    "amalgamate",
    "merge_extra_fill",
    "SymbolicFactor",
    "symbolic_factorization",
    "pattern_fingerprint",
    "assembly_plan",
    "relative_indices",
    "relative_indices_bottom",
    "Block",
    "snode_blocks",
    "all_blocks",
    "count_blocks",
    "partition_refinement",
    "SolveSchedule",
    "solve_levels",
    "solve_schedule",
    "AnalyzedSystem",
    "analyze",
]
