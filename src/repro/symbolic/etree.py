"""Elimination trees (Liu) and tree utilities.

The elimination tree of a symmetric matrix drives everything in supernodal
Cholesky: the column dependency order, supernode detection, column counts and
the supernodal assembly tree.  This module implements

* :func:`elimination_tree` — Liu's algorithm with ancestor path compression,
* :func:`postorder` — iterative depth-first postorder of a forest,
* helpers for tree heights, child lists and checking postorderedness.

References: J. W. H. Liu, "The role of elimination trees in sparse
factorization", SIAM J. Matrix Anal. Appl. 11(1), 1990 (paper's ref [2]).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "elimination_tree",
    "postorder",
    "children_lists",
    "etree_heights",
    "is_postordered",
    "first_descendants",
]


def _row_lists(A):
    """CSR-style arrays of the strictly-lower entries grouped by *row*.

    Returns ``(rowptr, cols)``: row ``i``'s below-diagonal column indices are
    ``cols[rowptr[i]:rowptr[i+1]]`` (ascending).
    """
    n = A.n
    cols = np.repeat(np.arange(n, dtype=np.int64), np.diff(A.indptr))
    rows = A.indices
    off = rows != cols
    r, c = rows[off], cols[off]
    order = np.lexsort((c, r))
    r, c = r[order], c[order]
    rowptr = np.zeros(n + 1, dtype=np.int64)
    np.add.at(rowptr, r + 1, 1)
    np.cumsum(rowptr, out=rowptr)
    return rowptr, c


def elimination_tree(A):
    """Elimination tree of symmetric ``A``.

    Returns ``parent`` (``int64``, length n) with ``parent[j] = -1`` for
    roots.  Liu's algorithm: for each row ``i``, walk up from every column
    ``k < i`` with ``a_ik != 0`` to the current root, path-compressing
    through an ``ancestor`` array.
    """
    n = A.n
    rowptr, rcols = _row_lists(A)
    parent = np.full(n, -1, dtype=np.int64)
    ancestor = np.full(n, -1, dtype=np.int64)
    for i in range(n):
        for p in range(rowptr[i], rowptr[i + 1]):
            k = rcols[p]
            # walk from k to the root of its current tree, compressing
            while True:
                a = ancestor[k]
                if a == i:
                    break
                ancestor[k] = i
                if a == -1:
                    parent[k] = i
                    break
                k = a
    return parent


def children_lists(parent):
    """Return ``(childptr, child)`` CSR arrays of each node's children,
    children sorted ascending (deterministic postorders)."""
    n = parent.size
    childptr = np.zeros(n + 1, dtype=np.int64)
    has_parent = parent >= 0
    np.add.at(childptr, parent[has_parent] + 1, 1)
    np.cumsum(childptr, out=childptr)
    child = np.empty(int(childptr[-1]), dtype=np.int64)
    fill = childptr[:-1].copy()
    for j in range(n):  # ascending j => children stored ascending
        p = parent[j]
        if p >= 0:
            child[fill[p]] = j
            fill[p] += 1
    return childptr, child


def postorder(parent):
    """Depth-first postorder of the forest.

    Returns ``post`` with ``post[k]`` = node visited k-th; children are
    visited in ascending node order, roots in ascending order.
    """
    n = parent.size
    childptr, child = children_lists(parent)
    post = np.empty(n, dtype=np.int64)
    k = 0
    roots = np.flatnonzero(parent < 0)
    for root in roots:
        # iterative DFS; stack holds (node, next-child cursor)
        stack = [(int(root), int(childptr[root]))]
        while stack:
            node, cursor = stack[-1]
            if cursor < childptr[node + 1]:
                stack[-1] = (node, cursor + 1)
                c = int(child[cursor])
                stack.append((c, int(childptr[c])))
            else:
                stack.pop()
                post[k] = node
                k += 1
    if k != n:
        raise ValueError("parent array is not a forest (cycle detected)")
    return post


def is_postordered(parent):
    """True when every node's label exceeds all labels in its subtree,
    i.e. ``parent[j] > j`` for all non-roots."""
    j = np.arange(parent.size)
    ok = (parent < 0) | (parent > j)
    return bool(ok.all())


def etree_heights(parent):
    """Height of each node's subtree (leaves have height 0).

    Requires only that children precede parents numerically OR not; computed
    with an explicit bottom-up pass over a postorder.
    """
    n = parent.size
    heights = np.zeros(n, dtype=np.int64)
    for j in postorder(parent):
        p = parent[j]
        if p >= 0:
            heights[p] = max(heights[p], heights[j] + 1)
    return heights


def first_descendants(parent, post):
    """Postorder number of the first (deepest-leftmost) descendant of each
    node — the ``first`` array of the fast column-count algorithm."""
    n = parent.size
    first = np.full(n, -1, dtype=np.int64)
    for k in range(n):
        j = post[k]
        while j != -1 and first[j] == -1:
            first[j] = k
            j = parent[j]
    return first
