"""Relaxed supernode amalgamation (Ashcraft–Grimes, paper's §IV-A).

Fundamental supernodes at the bottom of the tree are tiny; merging a child
supernode into its parent trades extra explicit zeros in the factor for
fewer, larger dense panels.  The paper's policy, reproduced here:

* candidate pairs are child/parent supernodes ``(J, p(J))``;
* at each step merge the pair adding the *least* new fill;
* stop once the cumulative growth of factor storage would exceed a cap
  (25 % in the paper).

Like CHOLMOD, we restrict candidates to *column-adjacent* pairs (the child
owning the columns immediately before the parent's first column — on a
postordered partition that child is the parent's rightmost child), so merging
never renumbers columns: the result is simply a coarser ``snptr``.

When child ``C`` (``w_C`` columns, ``b_C`` below-rows) merges into its parent
``P`` (``w_P``, ``b_P``), the subset property gives the merged panel
``w_C + w_P`` columns over ``b_P`` below-rows, and the storage delta is the
difference of dense trapezoid sizes.
"""

from __future__ import annotations

import heapq

import numpy as np

__all__ = ["amalgamate", "merge_extra_fill"]


def _trapezoid(w, b):
    """Entries of a dense trapezoidal panel with ``w`` columns and ``w + b``
    rows (lower-triangular diagonal block plus rectangle)."""
    m = w + b
    return w * m - w * (w - 1) // 2


def merge_extra_fill(w_child, b_child, w_parent, b_parent):
    """Explicit zeros added by merging the child into its parent."""
    new = _trapezoid(w_child + w_parent, b_parent)
    old = _trapezoid(w_child, b_child) + _trapezoid(w_parent, b_parent)
    return new - old


def amalgamate(symb, *, growth_cap=0.25):
    """Coarsen a supernode partition by greedy min-fill merging.

    Parameters
    ----------
    symb:
        :class:`~repro.symbolic.structure.SymbolicFactor` of the
        *fundamental* partition.
    growth_cap:
        Maximum allowed relative growth of factor storage (paper: 0.25).
        Merges are applied in increasing-fill order while the cumulative
        extra storage stays within ``growth_cap * base_storage``.

    Returns
    -------
    snptr:
        New (coarser) supernode boundary array.  Column order is unchanged.
    """
    nsup = symb.nsup
    snptr = symb.snptr
    w = np.diff(snptr).astype(np.int64)
    m = np.diff(symb.rowptr).astype(np.int64)
    b = m - w
    parent0 = symb.sn_parent.copy()
    base = symb.factor_nnz_dense()
    budget = int(growth_cap * base)

    alive = np.ones(nsup, dtype=bool)
    merged_into = np.arange(nsup, dtype=np.int64)  # union-find
    prev_sn = np.arange(-1, nsup - 1, dtype=np.int64)
    next_sn = np.arange(1, nsup + 1, dtype=np.int64)
    next_sn[-1] = -1
    first_col = snptr[:-1].copy()  # current first column of each alive snode

    def find(s):
        root = s
        while merged_into[root] != root:
            root = merged_into[root]
        while merged_into[s] != root:
            merged_into[s], s = root, int(merged_into[s])
        return int(root)

    def candidate(c):
        """Extra fill for merging alive snode ``c`` into its successor, or
        None when the successor is not its parent."""
        p = next_sn[c]
        if p == -1:
            return None
        par = parent0[c]
        if par == -1 or find(int(par)) != p:
            return None
        return merge_extra_fill(int(w[c]), int(b[c]), int(w[p]), int(b[p]))

    heap = []
    for c in range(nsup):
        extra = candidate(c)
        if extra is not None:
            heapq.heappush(heap, (extra, c))
    spent = 0
    while heap:
        extra, c = heapq.heappop(heap)
        if not alive[c]:
            continue
        cur = candidate(c)
        if cur is None or cur != extra:
            if cur is not None:
                heapq.heappush(heap, (cur, c))
            continue
        if spent + extra > budget:
            break
        p = int(next_sn[c])
        spent += extra
        # merge c into p (p keeps its id; its columns now start at c's)
        w[p] += w[c]
        first_col[p] = first_col[c]
        alive[c] = False
        merged_into[c] = p
        prv = int(prev_sn[c])
        prev_sn[p] = prv
        if prv != -1:
            next_sn[prv] = p
            cur = candidate(prv)
            if cur is not None:
                heapq.heappush(heap, (cur, prv))
        cur = candidate(p)
        if cur is not None:
            heapq.heappush(heap, (cur, p))

    # rebuild boundaries by walking the linked list of alive snodes
    heads = np.flatnonzero(alive & (prev_sn == -1))
    if heads.size != 1:
        raise AssertionError("amalgamation linked list corrupted")
    bounds = []
    s = int(heads[0])
    while s != -1:
        bounds.append(int(first_col[s]))
        s = int(next_sn[s])
    bounds.append(int(snptr[-1]))
    return np.asarray(bounds, dtype=np.int64)
