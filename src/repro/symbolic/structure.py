"""Supernodal symbolic factorization: row structures and storage layout.

Given a (postordered, permuted) matrix and a supernode partition — any
partition into column chains, including relaxed/merged ones — this computes,
bottom-up over the supernodal elimination tree,

* ``rowind(J)``: the sorted row indices of supernode ``J``'s dense panel
  (its own columns followed by the below-diagonal rows),
* the supernodal elimination tree (``sn_parent``),
* the dense trapezoidal storage layout of the factor.

The recurrence is exact for fundamental supernodes and a (tight) superset
for relaxed ones::

    below(J) = ( ⋃_{children C} below(C)  ∪  A-rows of cols(J) )  \\  {rows ≤ last(J)}

All unions are on sorted ``int64`` arrays via ``np.unique`` — the vectorised
bookkeeping idiom of the HPC guide.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from .supernodes import snode_of_column, validate_snptr

__all__ = ["SymbolicFactor", "symbolic_factorization", "pattern_fingerprint"]


def pattern_digest(n, *arrays):
    """Stable 64-bit hex digest of integer index arrays describing a
    sparsity structure.

    The digest covers ``n`` plus each array's length and ``int64`` byte
    content (SHA-256, truncated to 16 hex characters), so it is stable
    across processes, platforms and NumPy versions — unlike ``hash()`` —
    and collision-safe enough to key caches that *also* verify the pattern
    on use (the staged API validates ``indptr``/``indices`` equality when
    values are pushed through a plan, so a collision can never silently
    mix patterns).
    """
    h = hashlib.sha256()
    h.update(f"repro-pattern-v1:{int(n)}".encode())
    for arr in arrays:
        a = np.ascontiguousarray(arr, dtype=np.int64)
        h.update(str(a.size).encode())
        h.update(a.tobytes())
    return h.hexdigest()[:16]


def pattern_fingerprint(A):
    """Stable fingerprint of ``A``'s sparsity pattern.

    ``A`` is anything with ``n`` / ``indptr`` / ``indices`` attributes
    (a :class:`~repro.sparse.csc.SymmetricCSC`); the returned 16-hex-char
    string depends only on the *pattern* — every same-pattern matrix maps
    to the same fingerprint, values never enter the hash.  This is the
    request key of the multi-tenant serving gateway
    (:class:`repro.serving.Gateway`): clients that know their pattern is
    already warm can skip shipping the structure arrays entirely and
    submit values under the fingerprint alone.

    The symbolic pipeline is deterministic, so equal pattern fingerprints
    imply equal orderings, equal permuted patterns and interchangeable
    :class:`~repro.api.SymbolicPlan` objects (for fixed ``analyze``
    options).  :attr:`repro.api.SymbolicPlan.fingerprint` is the related
    *plan* identity: a hash of the permuted pattern and its permutation,
    which additionally distinguishes plans built with different orderings.
    """
    return pattern_digest(A.n, A.indptr, A.indices)


@dataclass
class SymbolicFactor:
    """Symbolic description of a supernodal Cholesky factor.

    Attributes
    ----------
    n:
        Matrix dimension.
    snptr:
        Supernode column boundaries (``nsup + 1``).
    sn_parent:
        Supernodal elimination tree (``-1`` for roots).
    rowptr / rows:
        Concatenated per-supernode row index lists: supernode ``s`` owns rows
        ``rows[rowptr[s]:rowptr[s+1]]`` (sorted; the first ``ncols(s)`` are
        its own columns).
    col2sn:
        Column → supernode map.
    """

    n: int
    snptr: np.ndarray
    sn_parent: np.ndarray
    rowptr: np.ndarray
    rows: np.ndarray
    col2sn: np.ndarray
    _panel_offsets: np.ndarray = field(default=None, repr=False)
    _cache: dict = field(default=None, repr=False, compare=False)

    # -- basic queries ---------------------------------------------------
    @property
    def nsup(self):
        """Number of supernodes."""
        return int(self.snptr.size - 1)

    def cache(self):
        """Dictionary of derived index structures (scatter plans, relative
        index maps, block lists) memoised against this symbolic factor.

        The structure arrays are immutable after construction, so cached
        entries never need invalidation; consumers key their own namespaces
        (e.g. ``"scatter_plan"``, ``"assembly_plan"``).
        """
        if self._cache is None:
            self._cache = {}
        return self._cache

    def snode_cols(self, s):
        """``(first, last+1)`` column range of supernode ``s``."""
        return int(self.snptr[s]), int(self.snptr[s + 1])

    def snode_ncols(self, s):
        """Number of columns of supernode ``s``."""
        return int(self.snptr[s + 1] - self.snptr[s])

    def snode_rows(self, s):
        """Sorted row indices of supernode ``s``'s panel (a view)."""
        return self.rows[self.rowptr[s]:self.rowptr[s + 1]]

    def snode_below_rows(self, s):
        """Row indices strictly below the diagonal block (a view)."""
        w = self.snode_ncols(s)
        return self.rows[self.rowptr[s] + w:self.rowptr[s + 1]]

    def panel_shape(self, s):
        """``(nrows, ncols)`` of supernode ``s``'s dense panel."""
        return (int(self.rowptr[s + 1] - self.rowptr[s]), self.snode_ncols(s))

    def panel_size(self, s):
        """Number of entries of the dense panel (rows × cols) — the paper's
        "supernode size" used by the CPU/GPU threshold."""
        m, w = self.panel_shape(s)
        return m * w

    # -- aggregate statistics ---------------------------------------------
    def factor_nnz_dense(self):
        """Entries of the trapezoidal dense panels (= stored factor size,
        including any explicit zeros introduced by relaxed merging)."""
        m = np.diff(self.rowptr)
        w = np.diff(self.snptr)
        return int(np.sum(m * w - w * (w - 1) // 2))

    def largest_update_size(self):
        """Entries of the largest RL update matrix, ``max_s b_s^2`` with
        ``b_s`` the below-diagonal row count — what must fit on the GPU (and
        what overflows it for nlpkkt120 in the paper)."""
        m = np.diff(self.rowptr)
        w = np.diff(self.snptr)
        b = m - w
        return int(np.max(b * b)) if b.size else 0

    def factor_flops(self):
        """Total factorization flops over the dense panels (potrf + trsm +
        syrk), the standard supernodal flop count."""
        total = 0
        for s in range(self.nsup):
            m, w = self.panel_shape(s)
            b = m - w
            total += w ** 3 // 3 + w ** 2 * b + w * b * b
        return int(total)

    def children(self):
        """List of child-supernode index arrays per supernode."""
        out = [[] for _ in range(self.nsup)]
        for s in range(self.nsup):
            p = self.sn_parent[s]
            if p >= 0:
                out[p].append(s)
        return [np.asarray(c, dtype=np.int64) for c in out]


def symbolic_factorization(A, snptr):
    """Compute the :class:`SymbolicFactor` of ``A`` for partition ``snptr``.

    ``A`` must already carry its final ordering (fill-reducing permutation +
    postorder [+ within-supernode refinement] applied).
    """
    n = A.n
    snptr = np.ascontiguousarray(snptr, dtype=np.int64)
    validate_snptr(snptr, n)
    nsup = snptr.size - 1
    col2sn = snode_of_column(snptr, n)
    below = [None] * nsup
    sn_parent = np.full(nsup, -1, dtype=np.int64)
    pending_children = [[] for _ in range(nsup)]
    rowptr = np.zeros(nsup + 1, dtype=np.int64)
    for s in range(nsup):
        first, last = snptr[s], snptr[s + 1]
        pieces = []
        for j in range(first, last):
            rows = A.indices[A.indptr[j]:A.indptr[j + 1]]
            pieces.append(rows[rows >= last])
        pieces.extend(pending_children[s])
        pending_children[s] = None
        if pieces:
            b = np.unique(np.concatenate(pieces))
        else:
            b = np.empty(0, dtype=np.int64)
        below[s] = b
        rowptr[s + 1] = rowptr[s] + (last - first) + b.size
        if b.size:
            p = int(col2sn[b[0]])
            sn_parent[s] = p
            # pass rows beyond the parent's columns up the tree
            pending_children[p].append(b[b >= snptr[p + 1]])
    rows = np.empty(int(rowptr[-1]), dtype=np.int64)
    for s in range(nsup):
        first, last = snptr[s], snptr[s + 1]
        lo = rowptr[s]
        rows[lo:lo + (last - first)] = np.arange(first, last)
        rows[lo + (last - first):rowptr[s + 1]] = below[s]
    return SymbolicFactor(
        n=n, snptr=snptr, sn_parent=sn_parent,
        rowptr=rowptr, rows=rows, col2sn=col2sn,
    )
