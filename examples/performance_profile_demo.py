"""Performance-profile demo: a miniature Figure 3.

Runs the four factorization methods over a handful of suite surrogates and
renders the Dolan–Moré performance profile as ASCII art, mirroring the
paper's Figure 3 ("the GPU version of RL is unequivocally the best ...
RLB closely follows").

Run:  python examples/performance_profile_demo.py
(Use benchmarks/bench_fig3_perfprofile.py for the full suite.)
"""

from repro.analysis import performance_profile, render_ascii
from repro.gpu import DeviceOutOfMemory
from repro.numeric import (
    factorize_rl_cpu,
    factorize_rl_gpu,
    factorize_rlb_cpu,
    factorize_rlb_gpu,
)
from repro.sparse import build_matrix
from repro.symbolic import analyze

MATRICES = ["CurlCurl_2", "bone010", "audikw_1", "Serena", "Queen_4147"]


def main():
    times = {"RL_C": [], "RLB_C": [], "RL_G": [], "RLB_G": []}
    print(f"{'matrix':<14} {'RL_C':>8} {'RLB_C':>8} {'RL_G':>8} "
          f"{'RLB_G':>8}")
    for name in MATRICES:
        system = analyze(build_matrix(name))
        row = {}
        row["RL_C"] = factorize_rl_cpu(
            system.symb, system.matrix).modeled_seconds
        row["RLB_C"] = factorize_rlb_cpu(
            system.symb, system.matrix).modeled_seconds
        try:
            row["RL_G"] = factorize_rl_gpu(
                system.symb, system.matrix).modeled_seconds
        except DeviceOutOfMemory:
            row["RL_G"] = None
        try:
            row["RLB_G"] = factorize_rlb_gpu(
                system.symb, system.matrix, version=2).modeled_seconds
        except DeviceOutOfMemory:
            row["RLB_G"] = None
        for k in times:
            times[k].append(row[k])
        print(f"{name:<14} " + " ".join(
            f"{row[k]:>8.4f}" if row[k] else f"{'OOM':>8}" for k in times))

    profile = performance_profile(times)
    print("\n" + render_ascii(profile))
    print("\nareas under the curves (higher = better):")
    for m in sorted(profile.curves, key=profile.area, reverse=True):
        print(f"  {m:<6} {profile.area(m):.3f}")
    print(f"\nwinner: {profile.winner()} — as in the paper's Figure 3.")


if __name__ == "__main__":
    main()
