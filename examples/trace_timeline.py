"""Trace the simulated machine: Gantt charts and overlap accounting.

Attaches an event tracer to the simulated GPU's timeline, runs the paper's
RL-GPU schedule on a suite matrix, and shows

* an ASCII Gantt chart of the four lanes (host, compute stream, H2D/D2H
  copy engines),
* overlap statistics — how much of the asynchronous panel transfer hides
  under the SYRK (the paper's §III step 3),
* the async-vs-sync ablation: the same run with the panel copy made
  blocking, quantifying what the overlap bought,
* a Chrome/Perfetto trace file you can open in ``chrome://tracing``.

Run:  python examples/trace_timeline.py
"""

from repro.gpu import MachineModel, SimulatedGpu, Tracer
from repro.gpu.device import Timeline
from repro.numeric import factorize_rl_gpu
from repro.sparse import get_entry
from repro.symbolic import analyze

MATRIX = "Serena"


def traced_run(system, **kwargs):
    tracer = Tracer()
    machine = MachineModel()
    gpu = SimulatedGpu(10 ** 15, machine=machine,
                       timeline=Timeline(tracer=tracer))
    res = factorize_rl_gpu(system.symb, system.matrix, machine=machine,
                           device=gpu, **kwargs)
    return res, tracer


def main():
    system = analyze(get_entry(MATRIX).builder())
    print(f"{MATRIX}: n = {system.symb.n}, "
          f"{system.symb.nsup} supernodes\n")

    res, tracer = traced_run(system)
    print("RL-GPU timeline (default threshold):")
    print(tracer.ascii_gantt(width=76))
    print()

    s = tracer.summary()
    print(f"GPU compute busy      : {1e3 * s['busy_gpu']:8.2f} ms")
    print(f"D2H engine busy       : {1e3 * s['busy_copy_out']:8.2f} ms")
    print(f"D2H hidden under GPU  : "
          f"{1e3 * s['overlap_gpu_copy_out']:8.2f} ms")
    print()

    res_sync, _ = traced_run(system, async_panel_d2h=False)
    gain = res_sync.modeled_seconds / res.modeled_seconds - 1
    print("Async-panel-D2H ablation (paper §III step 3):")
    print(f"  async (paper) : {res.modeled_seconds:.4f} s")
    print(f"  blocking      : {res_sync.modeled_seconds:.4f} s "
          f"({100 * gain:+.1f}%)")
    print()

    path = tracer.save_chrome_trace("rl_gpu_trace.json")
    print(f"Chrome trace written to {path} "
          "(open in chrome://tracing or ui.perfetto.dev)")


if __name__ == "__main__":
    main()
