"""Incremental factorization maintenance: rank-1 updates + sparse solves.

A common production pattern around a sparse Cholesky solver: the matrix
changes by low-rank corrections (re-weighted least squares, power-grid
branch switching, sliding observation windows) and most right-hand sides
are sparse (point loads, single-column inverse probes).  Instead of
refactorizing, this example

1. factorizes a 3-D Poisson problem once,
2. applies a stream of structurally valid rank-1 updates and downdates via
   hyperbolic rotations (:func:`repro.numeric.rank1_update`), checking each
   against a dense refactorization,
2b. walks the staged copy-on-write road — immutable
   :meth:`repro.api.Factor.update` / ``downdate`` at rank k, priced by
   :meth:`repro.api.Factor.update_cost`, with
   :meth:`repro.api.Factor.apply` taking the modeled
   update-vs-refactorize crossover automatically (``docs/updates.md``),
3. serves sparse right-hand sides with the reach-limited forward sweep
   (:func:`repro.solve.forward_solve_sparse`), reporting how few supernodes
   each solve touches,
4. runs a same-pattern value sweep through one reused
   :class:`repro.api.SymbolicPlan` — the symbolic analysis, relative-index
   caches and panel scatter plan are computed once and every subsequent
   factorization pays only for the numeric kernels.
   (When the whole sweep is known up front, prefer
   :meth:`repro.api.SymbolicPlan.factorize_batch` — the batched serving
   mode demonstrated in ``examples/batched_serving.py``.)

Run:  python examples/incremental_updates.py
"""

import time

import numpy as np
import scipy.linalg as sla

import repro
from repro.numeric import column_structure, factorize_rl_cpu, rank1_update
from repro.solve import backward_solve, forward_solve_sparse
from repro.sparse import grid_laplacian
from repro.symbolic import analyze


def main():
    A = grid_laplacian((10, 10, 6))
    system = analyze(A)
    symb = system.symb
    storage = factorize_rl_cpu(symb, system.matrix).storage
    print(f"Problem: n = {symb.n}, {symb.nsup} supernodes, "
          f"factor entries = {symb.factor_nnz_dense()}\n")

    # -- a stream of rank-1 modifications --------------------------------
    rng = np.random.default_rng(7)
    dense = system.matrix.to_dense()
    print("rank-1 stream (update, update, downdate, ...):")
    for step in range(6):
        j0 = int(rng.integers(0, symb.n))
        rows = column_structure(symb, j0)
        w = np.zeros(symb.n)
        w[j0] = 0.3 + 0.2 * rng.random()
        take = rows[: min(5, rows.size)]
        w[take] = 0.1 * rng.standard_normal(take.size)
        downdate = step % 3 == 2
        path = rank1_update(storage, w, downdate=downdate)
        dense += (-1 if downdate else +1) * np.outer(w, w)
        ref = np.tril(sla.cholesky(dense, lower=True))
        err = np.abs(storage.to_dense_lower() - ref).max()
        kind = "downdate" if downdate else "update  "
        print(f"  step {step}: {kind} at column {j0:4d}, "
              f"path length {len(path):3d} of {symb.n} columns, "
              f"max error vs refactorization {err:.2e}")
        assert err < 1e-8

    # -- staged rank-k updates: copy-on-write + the crossover -------------
    print("\nstaged rank-k updates (immutable factors, policy='auto'):")
    from repro.update import structured_update

    plan = repro.plan(A)
    factor = plan.factorize(engine="rl")
    b = A.matvec(np.ones(A.n))
    for rank in (1, 4):
        W = structured_update(plan.symb, plan.perm,
                              [3 * i for i in range(rank)],
                              nent=4, seed=rank, scale=0.1)
        cost = factor.update_cost(W)
        applied = factor.apply(W, policy="auto")
        shared = sum(p is q for p, q in zip(factor.storage.panels,
                                            applied.storage.panels))
        x = applied.solve(b)
        print(f"  rank {rank}: path {cost.path_cols:4d} cols, modeled "
              f"update {cost.update_seconds * 1e3:6.2f} ms vs refactorize "
              f"{cost.refactorize_seconds * 1e3:6.2f} ms -> "
              f"{applied.result.extra['applied_policy']:<11s} "
              f"(shares {shared}/{len(factor.storage.panels)} panels), "
              f"residual {applied.residual_norm(x, b):.2e}")
        assert applied.residual_norm(x, b) < 1e-8
        # the parent factor is untouched: still solves the ORIGINAL system
        assert factor.residual_norm(factor.solve(b), b) < 1e-10

    # -- sparse right-hand sides ------------------------------------------
    print("\nsparse right-hand sides (reach-limited forward sweep):")
    for trial in range(4):
        idx = np.unique(rng.integers(0, symb.n, size=trial + 1))
        val = rng.standard_normal(idx.size)
        y, touched = forward_solve_sparse(storage, idx, val)
        x = backward_solve(storage, y)
        b = np.zeros(symb.n)
        b[idx] = val
        resid = np.abs(dense @ x - b).max()
        print(f"  nnz(b) = {idx.size}: touched "
              f"{touched.size:3d}/{symb.nsup} supernodes, "
              f"residual {resid:.2e}")
        assert resid < 1e-8

    # -- same-pattern value sweeps: the symbolic-reuse API ----------------
    print("\nsame-pattern refactorization (symbolic + scatter plan reused):")
    t0 = time.perf_counter()
    plan = repro.plan(A)
    factor = plan.factorize(engine="rl")
    first = time.perf_counter() - t0
    b = A.matvec(np.ones(A.n))
    data = A.data
    for step in range(3):
        # e.g. a time-step-dependent diagonal shift: values change,
        # pattern (and therefore all symbolic work) does not
        data = data.copy()
        data[A.indptr[:-1]] *= 1.0 + 0.05 * (step + 1)
        t0 = time.perf_counter()
        factor = plan.factorize(data, engine="rl")
        dt = time.perf_counter() - t0
        x = factor.solve(b)
        print(f"  sweep {step}: refactorize {dt * 1e3:7.2f} ms "
              f"(first factorize incl. analysis {first * 1e3:7.2f} ms), "
              f"residual {factor.residual_norm(x, b):.2e}")
        assert factor.residual_norm(x, b) < 1e-10
    print("\nall incremental operations verified against dense references")


if __name__ == "__main__":
    main()
