"""Ordering study: why the paper runs METIS nested dissection first.

Compares natural, RCM, minimum-degree and nested-dissection orderings on a
3-D problem: fill, flops, elimination-tree shape, supernode sizes — and the
downstream effect on GPU offload (bigger supernodes => more offloadable
work => better speedup).

Run:  python examples/ordering_study.py
"""

from repro.numeric import factorize_rl_cpu, factorize_rl_gpu
from repro.ordering import evaluate_ordering, order_matrix
from repro.sparse import grid_laplacian
from repro.symbolic import analyze


def main():
    A = grid_laplacian((12, 12, 8))
    print(f"3-D Poisson problem: n = {A.n}, nnz(A) = {A.nnz_lower}\n")

    print(f"{'ordering':<10} {'factor nnz':>11} {'flops':>13} "
          f"{'tree height':>12} {'fill ratio':>11}")
    for method in ("natural", "rcm", "mindeg", "nd"):
        q = evaluate_ordering(A, order_matrix(A, method))
        print(f"{method:<10} {q.factor_nnz:>11,} {q.factor_flops:>13,} "
              f"{q.etree_height:>12} {q.fill_ratio:>11.2f}")

    print("\ndownstream effect on the GPU-accelerated factorization:")
    print(f"{'ordering':<10} {'nsup':>6} {'max panel':>10} "
          f"{'CPU best (s)':>13} {'GPU (s)':>9} {'speedup':>8}")
    for method in ("rcm", "mindeg", "nd"):
        system = analyze(A, ordering=method)
        symb = system.symb
        cpu = factorize_rl_cpu(symb, system.matrix)
        gpu = factorize_rl_gpu(symb, system.matrix)
        max_panel = max(symb.panel_size(s) for s in range(symb.nsup))
        print(f"{method:<10} {symb.nsup:>6} {max_panel:>10,} "
              f"{cpu.modeled_seconds:>13.4f} {gpu.modeled_seconds:>9.4f} "
              f"{cpu.modeled_seconds / gpu.modeled_seconds:>8.2f}")

    print("\nNested dissection gives the balanced tree and fat separators "
          "that create\nlarge supernodes — the prerequisite for the paper's "
          "GPU offload to pay off.")


if __name__ == "__main__":
    main()
