"""Quickstart: factor and solve a sparse SPD system four ways.

Builds a 3-D Poisson problem and walks the staged ``plan → Factor``
pipeline: one symbolic analysis (nested-dissection ordering, supernode
merging, partition refinement) shared by all four factorization engines —
RL and RLB on the CPU, and their GPU-offloaded versions on the simulated
device — then solves and checks residuals.

Run:  python examples/quickstart.py
"""

import numpy as np

import repro
from repro.sparse import grid_laplacian


def main():
    A = grid_laplacian((14, 14, 8))
    rng = np.random.default_rng(0)
    x_true = rng.standard_normal(A.n)
    b = A.matvec(x_true)
    print(f"Problem: 3-D Poisson, n = {A.n}, nnz(A) = {A.nnz_lower}\n")

    plan = repro.plan(A)  # symbolic analysis: once, shared by every engine
    print(f"Symbolic plan: {plan.nsup} supernodes, "
          f"{plan.symb.factor_nnz_dense()} factor entries\n")

    print(f"{'engine':<12} {'modeled time':>14} {'speedup':>8} "
          f"{'snodes on GPU':>14} {'residual':>10}")
    baseline = None
    for engine in ("rl", "rlb", "rl_gpu", "rlb_gpu_v2"):
        factor = plan.factorize(engine=engine)
        x = factor.solve(b)
        res = factor.result
        if baseline is None:
            baseline = res.modeled_seconds
        speedup = baseline / res.modeled_seconds
        gpu = (f"{res.snodes_on_gpu}/{res.total_snodes}"
               if res.snodes_on_gpu else "-")
        print(f"{engine:<12} {res.modeled_seconds:>12.4f} s "
              f"{speedup:>8.2f} {gpu:>14} "
              f"{factor.residual_norm(x, b):>10.2e}")
        assert np.allclose(x, x_true, atol=1e-6)

    print("\nAll engines produced the same solution to machine precision.")
    print(f"log det(A) = {factor.logdet():.4f} (free with any factor)")
    print("(GPU times are modeled on the simulated device; numerics are "
          "exact — see DESIGN.md.)")

    # Mixed precision: factorize in fp32 (half the panel bytes, single-
    # precision BLAS), then recover fp64 accuracy by iterative refinement
    # — with an automatic fp64 refactorize should refinement ever stall.
    # The whole lane is documented in docs/precision.md.
    f32 = plan.factorize(engine="rlb", dtype=np.float32)
    direct = f32.residual_norm(f32.solve(b), b)
    out = f32.solve_refined(b, return_info=True)
    refined = f32.residual_norm(out.x, b)
    print(f"\nMixed precision (dtype=np.float32): "
          f"{f32.result.storage.nbytes()} panel bytes "
          f"(fp64: {factor.result.storage.nbytes()})")
    print(f"  direct fp32 solve residual: {direct:.2e}")
    print(f"  after {out.iterations} refinement steps: {refined:.2e}")
    assert refined <= 1e-12


if __name__ == "__main__":
    main()
