"""Engine tour: every factorization organisation on one matrix.

Runs all eight engines — the paper's RL/RLB (CPU + GPU), the left-looking
and multifrontal baselines and their GPU offloads, and the multi-GPU RL
extension — on one suite matrix, verifying that every factor is identical,
then prints the modeled-time comparison, the per-kernel-class breakdown,
and the memory planner's feasibility report.

Run:  python examples/engine_tour.py [matrix-name]
"""

import sys

import numpy as np

import repro
from repro.analysis import breakdown, format_table, render_breakdowns
from repro.numeric import factorize_rl_multigpu
from repro.numeric.registry import ENGINES
from repro.sparse import get_entry

BIG_MEM = 10 ** 15


def main(name="Serena"):
    A = get_entry(name).builder()
    p = repro.plan(A)  # symbolic analysis, shared by every engine below
    symb = p.symb
    print(f"{name}: n = {symb.n}, {symb.nsup} supernodes, "
          f"{symb.factor_flops():.2e} factor flops  "
          f"[pattern {p.fingerprint}]\n")

    rows = []
    reference = None
    for engine in ENGINES:
        kwargs = {"device_memory": BIG_MEM} if "gpu" in engine else {}
        res = p.factorize(engine=engine, **kwargs).result
        L = res.storage.to_dense_lower()
        if reference is None:
            reference = L
        err = np.abs(L - reference).max()
        assert err < 1e-8, f"{engine} disagrees with reference ({err})"
        gpu = (f"{res.snodes_on_gpu}/{res.total_snodes}"
               if res.snodes_on_gpu else "--")
        rows.append((engine, f"{res.modeled_seconds:.4f}",
                     str(res.kernel_count), gpu))
    mg = factorize_rl_multigpu(symb, p.system.matrix, num_devices=4,
                               threshold=0, device_memory=BIG_MEM)
    rows.append((mg.method, f"{mg.modeled_seconds:.4f}",
                 str(mg.kernel_count), f"{mg.snodes_on_gpu}/{mg.total_snodes}"))
    print(format_table(
        ["engine", "modeled s", "BLAS calls", "snodes on GPU"], rows,
        title="All engines, identical factors"))
    print()

    bs = [breakdown(symb, method=m)
          for m in ("rl", "rlb", "rl_gpu", "rlb_gpu")]
    print(render_breakdowns(bs, title="Where the modeled time goes "
                                      "(resource seconds per class)"))
    print()

    mp = repro.memory_plan(symb)
    print(f"Memory planner at the default device "
          f"({mp.device_memory / 2**20:.0f} MiB):")
    for m, need in mp.predictions.items():
        tag = "fits" if m in mp.feasible else "DOES NOT FIT"
        print(f"  {m:<18} predicted peak {need / 2**20:7.1f} MiB  [{tag}]")
    print(f"  recommended engine: {mp.recommended}")


if __name__ == "__main__":
    main(*sys.argv[1:])
