"""Engine tour: every factorization organisation on one matrix.

Runs all eight engines — the paper's RL/RLB (CPU + GPU), the left-looking
and multifrontal baselines and their GPU offloads, and the multi-GPU RL
extension — on one suite matrix, verifying that every factor is identical,
then prints the modeled-time comparison, the per-kernel-class breakdown,
and the memory planner's feasibility report.

Run:  python examples/engine_tour.py [matrix-name]
"""

import sys

import numpy as np

from repro.analysis import breakdown, format_table, render_breakdowns
from repro.numeric import factorize_rl_multigpu, plan
from repro.solve import METHODS
from repro.sparse import get_entry
from repro.symbolic import analyze

BIG_MEM = 10 ** 15


def main(name="Serena"):
    system = analyze(get_entry(name).builder())
    symb, B = system.symb, system.matrix
    print(f"{name}: n = {symb.n}, {symb.nsup} supernodes, "
          f"{symb.factor_flops():.2e} factor flops\n")

    rows = []
    reference = None
    for method, (fn, fixed) in METHODS.items():
        kwargs = dict(fixed)
        if "gpu" in method:
            kwargs["device_memory"] = BIG_MEM
        res = fn(symb, B, **kwargs)
        L = res.storage.to_dense_lower()
        if reference is None:
            reference = L
        err = np.abs(L - reference).max()
        assert err < 1e-8, f"{method} disagrees with reference ({err})"
        gpu = (f"{res.snodes_on_gpu}/{res.total_snodes}"
               if res.snodes_on_gpu else "--")
        rows.append((method, f"{res.modeled_seconds:.4f}",
                     str(res.kernel_count), gpu))
    mg = factorize_rl_multigpu(symb, B, num_devices=4, threshold=0,
                               device_memory=BIG_MEM)
    rows.append((mg.method, f"{mg.modeled_seconds:.4f}",
                 str(mg.kernel_count), f"{mg.snodes_on_gpu}/{mg.total_snodes}"))
    print(format_table(
        ["engine", "modeled s", "BLAS calls", "snodes on GPU"], rows,
        title="All engines, identical factors"))
    print()

    bs = [breakdown(symb, method=m)
          for m in ("rl", "rlb", "rl_gpu", "rlb_gpu")]
    print(render_breakdowns(bs, title="Where the modeled time goes "
                                      "(resource seconds per class)"))
    print()

    mp = plan(symb)
    print(f"Memory planner at the default device "
          f"({mp.device_memory / 2**20:.0f} MiB):")
    for m, need in mp.predictions.items():
        tag = "fits" if m in mp.feasible else "DOES NOT FIT"
        print(f"  {m:<18} predicted peak {need / 2**20:7.1f} MiB  [{tag}]")
    print(f"  recommended engine: {mp.recommended}")


if __name__ == "__main__":
    main(*sys.argv[1:])
