"""Structural-mechanics scenario: a 3-dof FEM-style stiffness system.

This is the workload class the paper's intro motivates (audikw_1, Serena,
Queen_4147 are all mechanical FEM matrices): every mesh node carries three
displacement unknowns, giving dense 3x3 node blocks and therefore large
supernodes — exactly what makes GPU offload pay.

The script walks through the pipeline explicitly (instead of using the
high-level solver) to show what each stage contributes, then compares the
CPU-only and GPU-offloaded factorizations, finishing with an iterative
refinement step.

Run:  python examples/structural_mechanics.py
"""

import numpy as np

from repro.numeric import factorize_rl_cpu, factorize_rl_gpu
from repro.solve import refine
from repro.sparse import vector_stencil
from repro.symbolic import analyze, count_blocks


def main():
    # a 10x10x6 mesh with 3 dofs per node ~ 1,800 unknowns
    A = vector_stencil((10, 10, 6), dof=3, coupling=0.3, seed=42)
    print(f"FEM-style system: n = {A.n}, nnz(A) = {A.nnz_lower}")

    # --- symbolic stages, step by step -------------------------------
    plain = analyze(A, merge=False, refine=False)
    merged = analyze(A, merge=True, refine=False)
    full = analyze(A, merge=True, refine=True)
    print("\nsymbolic pipeline:")
    print(f"  fundamental supernodes : {plain.nsup}")
    print(f"  after merging (25% cap): {merged.nsup} "
          f"(storage +{100 * (merged.symb.factor_nnz_dense() / plain.symb.factor_nnz_dense() - 1):.1f}%)")
    print(f"  RLB blocks             : {count_blocks(merged.symb)} -> "
          f"{count_blocks(full.symb)} after partition refinement")
    print(f"  factor nnz (panels)    : {full.symb.factor_nnz_dense():,}")
    print(f"  factor flops           : {full.symb.factor_flops():,}")

    # --- numeric factorization: CPU vs GPU-offloaded ------------------
    cpu = factorize_rl_cpu(full.symb, full.matrix)
    gpu = factorize_rl_gpu(full.symb, full.matrix)
    print("\nnumeric factorization (RL):")
    print(f"  CPU best ({cpu.best_threads:>3} MKL threads): "
          f"{cpu.modeled_seconds:.4f} s (modeled)")
    print(f"  GPU offloaded ({gpu.snodes_on_gpu}/{gpu.total_snodes} "
          f"supernodes): {gpu.modeled_seconds:.4f} s (modeled)")
    print(f"  speedup: {cpu.modeled_seconds / gpu.modeled_seconds:.2f}x")
    print(f"  device traffic: {gpu.gpu_stats.h2d_bytes / 2**20:.0f} MiB in, "
          f"{gpu.gpu_stats.d2h_bytes / 2**20:.0f} MiB out, "
          f"peak {gpu.gpu_stats.peak_memory / 2**20:.0f} MiB")

    # factors are identical
    err = np.abs(cpu.storage.to_dense_lower()
                 - gpu.storage.to_dense_lower()).max()
    print(f"  max |L_cpu - L_gpu| = {err:.2e}")

    # --- solve with iterative refinement ------------------------------
    rng = np.random.default_rng(1)
    x_true = rng.standard_normal(A.n)
    b = A.matvec(x_true)
    out = refine(A, gpu.storage, full.perm, b, tol=1e-13)
    print("\nsolve + iterative refinement:")
    for it, r in enumerate(out.residual_norms):
        print(f"  iteration {it}: relative residual {r:.2e}")
    print(f"  converged: {out.converged}, "
          f"error vs known solution: "
          f"{np.abs(out.x - x_true).max():.2e}")


if __name__ == "__main__":
    main()
