"""Memory-limited factorization: why RLB exists (the nlpkkt120 story).

The paper's RL keeps a supernode's *entire* update matrix in device memory;
for matrices with very long below-diagonal row sets that allocation can
exceed the GPU (nlpkkt120 on a 40 GB A100).  RLB version 2 streams the
update back block by block, so its footprint is just the panel plus two
small buffers — it factorizes matrices RL cannot.

This script reproduces that contrast on the nlpkkt120 surrogate and then
finds each method's minimum workable device capacity by bisection.

Run:  python examples/memory_limited_factorization.py
"""

from repro.gpu import DeviceOutOfMemory
from repro.numeric import (
    DEFAULT_DEVICE_MEMORY,
    factorize_rl_gpu,
    factorize_rlb_gpu,
)
from repro.sparse import build_matrix
from repro.symbolic import analyze

MIB = 1024 * 1024


def try_method(fn, system, capacity):
    try:
        res = fn(system.symb, system.matrix, device_memory=capacity)
        return res
    except DeviceOutOfMemory:
        return None


def min_capacity(fn, system, lo=MIB, hi=8192 * MIB):
    """Smallest device capacity (to ~4 MiB) at which ``fn`` succeeds."""
    while hi - lo > 4 * MIB:
        mid = (lo + hi) // 2
        if try_method(fn, system, mid) is None:
            lo = mid
        else:
            hi = mid
    return hi


def main():
    print("Building the nlpkkt120 surrogate (elongated KKT archetype)...")
    A = build_matrix("nlpkkt120")
    system = analyze(A)
    symb = system.symb
    print(f"  n = {A.n}, supernodes = {symb.nsup}, "
          f"largest update matrix = {symb.largest_update_size():,} entries")

    cap = DEFAULT_DEVICE_MEMORY
    print(f"\nsimulated device capacity: {cap // MIB} MiB (scaled A100)")
    rl = try_method(factorize_rl_gpu, system, cap)
    print(f"  RL     : {'ok' if rl else 'OUT OF MEMORY'}"
          + (f" ({rl.modeled_seconds:.3f} s modeled)" if rl else
             "  <- the paper's Table I gap"))
    rlb = try_method(
        lambda s, m, **kw: factorize_rlb_gpu(s, m, version=2, **kw),
        system, cap)
    print(f"  RLB v2 : {'ok' if rlb else 'OUT OF MEMORY'}"
          + (f" ({rlb.modeled_seconds:.3f} s modeled, peak "
             f"{rlb.gpu_stats.peak_memory / MIB:.0f} MiB)" if rlb else ""))

    print("\nbisecting each method's minimum device capacity...")
    need_rl = min_capacity(factorize_rl_gpu, system)
    need_rlb = min_capacity(
        lambda s, m, **kw: factorize_rlb_gpu(s, m, version=2, **kw), system)
    print(f"  RL needs     >= {need_rl / MIB:.0f} MiB "
          "(panel + full update matrix resident)")
    print(f"  RLB v2 needs >= {need_rlb / MIB:.0f} MiB "
          "(panel + two block buffers)")
    print(f"  -> RLB v2 factorizes with "
          f"{need_rl / need_rlb:.2f}x less device memory, the paper's "
          "conclusion: 'RLB is capable of factorizing very large matrices "
          "with GPU support.'")


if __name__ == "__main__":
    main()
