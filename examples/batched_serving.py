"""Batched AND streaming same-pattern serving: one plan, many matrices.

The high-throughput serving patterns the staged API unlocks: a parameter
sweep produces B matrices sharing one sparsity pattern; a single
:class:`repro.api.SymbolicPlan` owns the symbolic work and either

* ``plan.factorize_batch`` pushes all B numeric factorizations through ONE
  threaded task-DAG worker pool (the *closed batch* — everything exists up
  front), or
* ``plan.serve()`` opens a streaming :class:`repro.api.ServingSession` —
  the same worker pool kept alive while matrices are submitted one at a
  time (``submit_solve`` futures), the arrival-driven serving loop.

The example

1. builds a 3-D Poisson pattern and a sweep of diffusion coefficients,
2. factorizes the whole sweep in one batch call,
3. verifies every batch factor is bit-identical to a serial
   ``refactorize`` of the same matrix (the determinism contract),
4. serves a shared right-hand side with ``solve_all`` — serial and
   level-scheduled parallel (``workers=4``, bit-identical again) — and
   reads the ``logdet`` of every sweep member,
5. compares batched vs looped wall-clock,
6. replays the sweep through a streaming session, one submission at a
   time, with a mid-stream non-SPD request that fails only its own future.

Run:  python examples/batched_serving.py
"""

import time

import numpy as np

import repro
from repro.sparse import grid_laplacian


def main():
    A = grid_laplacian((12, 12, 8))
    nbatch = 8
    rng = np.random.default_rng(42)

    # a sweep of same-pattern SPD matrices: jittered off-diagonals plus a
    # per-member diagonal shift (think: diffusion coefficient / Tikhonov
    # parameter scan)
    diag_pos = A.indptr[:-1]
    sweep = []
    for k in range(nbatch):
        data = A.data * (1.0 + 0.02 * rng.random(A.data.size))
        data[diag_pos] += 0.1 * (k + 1)
        sweep.append(data)

    plan = repro.plan(A)  # symbolic analysis: once for the whole sweep
    print(f"Problem: n = {A.n}, {plan.nsup} supernodes, "
          f"sweep of {nbatch} same-pattern matrices\n")

    # -- batched: one worker pool drains all 8 task DAGs ------------------
    t0 = time.perf_counter()
    batch = plan.factorize_batch(sweep, engine="rlb_par", workers=4)
    t_batch = time.perf_counter() - t0

    # -- looped: one same-plan factorize at a time (symbolic work shared,
    # but no cross-matrix overlap) ----------------------------------------
    plan.factorize(engine="rlb")  # prime the index caches, like the batch
    t0 = time.perf_counter()
    loop = [plan.factorize(data, engine="rlb") for data in sweep]
    t_loop = time.perf_counter() - t0

    for res, ref in zip(batch, loop):
        for p, q in zip(res.storage.panels, ref.storage.panels):
            assert np.array_equal(p, q)
    print("determinism: all batch factors bit-identical to the serial "
          "refactorize loop")

    b = A.matvec(np.ones(A.n))
    xs = batch.solve_all(b)  # one shared RHS across the sweep
    xs_par = batch.solve_all(b, workers=4)  # level-scheduled, one pool
    assert all(np.array_equal(x, xp) for x, xp in zip(xs, xs_par))
    worst = max(f.residual_norm(x, b) for f, x in zip(batch, xs))
    print(f"solve_all: {len(xs)} solutions (parallel solves bit-identical), "
          f"worst residual {worst:.2e}")
    print("log det over the sweep:",
          np.array2string(batch.logdets(), precision=1))

    workers = batch[0].result.extra["workers"]
    print(f"\nlooped  : {t_loop * 1e3:8.1f} ms "
          f"({t_loop / nbatch * 1e3:6.1f} ms/matrix)")
    print(f"batched : {t_batch * 1e3:8.1f} ms "
          f"({t_batch / nbatch * 1e3:6.1f} ms/matrix, workers={workers})")
    print(f"speedup : {t_loop / t_batch:.2f}x "
          "(grows with cores; BLAS should be pinned to 1 thread — "
          "see benchmarks/bench_batch.py)")

    # -- streaming: the arrival-driven serving loop -----------------------
    # matrices now arrive one at a time (think: requests on a queue); one
    # persistent pool serves them as they come — and one poisoned request
    # (non-SPD) fails only its own future, never the session
    poisoned = sweep[3].copy()
    poisoned[diag_pos] = -1.0
    t0 = time.perf_counter()
    with plan.serve(engine="rlb_par", workers=4) as session:
        futures = [session.submit_solve(data, b) for data in sweep]
        bad = session.submit(poisoned)
        stream_xs = [f.result() for f in futures]
        err = bad.exception()
    t_stream = time.perf_counter() - t0
    assert all(np.array_equal(x, r) for x, r in zip(stream_xs, xs))
    print(f"\nstreaming session: {len(stream_xs)} submit_solve futures in "
          f"{t_stream * 1e3:.1f} ms, all bit-identical to the batch path")
    print(f"poisoned submission failed alone: {type(err).__name__} "
          f"(stream_index={err.stream_index}) — the pool kept serving")


if __name__ == "__main__":
    main()
