"""Ablation: device-memory capacity vs feasibility.

Sweeps the simulated device capacity and records which methods can still
factorize the largest matrices — generalising the paper's nlpkkt120
observation (RL needs panel + full update matrix resident; RLB v2 needs
only the panel plus two small block buffers, so it keeps working far below
RL's requirement).
"""

from __future__ import annotations

from conftest import suite_names, write_result
from repro.analysis import format_table
from repro.gpu import DeviceOutOfMemory
from repro.numeric import factorize_rl_gpu, factorize_rlb_gpu

MIB = 1024 * 1024
CAPACITIES = [64 * MIB, 128 * MIB, 256 * MIB, 400 * MIB, 512 * MIB,
              1024 * MIB]


def sweep(name):
    from conftest import get_system

    system = get_system(name)
    rows = []
    feasibility = {}
    for cap in CAPACITIES:
        status = {}
        for label, fn in [("RL", lambda **kw: factorize_rl_gpu(
                               system.symb, system.matrix, **kw)),
                          ("RLBv2", lambda **kw: factorize_rlb_gpu(
                               system.symb, system.matrix, version=2, **kw))]:
            try:
                res = fn(device_memory=cap)
                status[label] = f"ok ({res.gpu_stats.peak_memory / MIB:.0f} MiB)"
            except DeviceOutOfMemory:
                status[label] = "OOM"
        feasibility[cap] = status
        rows.append((f"{cap // MIB} MiB", status["RL"], status["RLBv2"]))
    text = format_table(["device memory", "RL", "RLB v2"], rows,
                        title=f"Ablation: device capacity sweep on {name}")
    return text, feasibility


def test_memory_sweep_nlpkkt120(benchmark):
    name = ("nlpkkt120" if "nlpkkt120" in suite_names()
            else max(suite_names(),
                     key=lambda n: len(n)))
    text, feas = benchmark.pedantic(lambda: sweep(name), rounds=1,
                                    iterations=1)
    write_result("ablation_memory.txt", text)
    # the RLB-v2 feasibility frontier sits strictly below RL's: there is a
    # capacity where RLB works and RL does not
    exists_gap = any(
        feas[cap]["RL"] == "OOM" and feas[cap]["RLBv2"].startswith("ok")
        for cap in CAPACITIES)
    assert exists_gap, "RLB v2 must survive capacities where RL fails"
    # at the largest capacity both succeed
    top = CAPACITIES[-1]
    assert feas[top]["RL"].startswith("ok")
    assert feas[top]["RLBv2"].startswith("ok")
    # monotonicity: once a method works, more memory never breaks it
    for label in ("RL", "RLBv2"):
        seen_ok = False
        for cap in CAPACITIES:
            ok = feas[cap][label].startswith("ok")
            if seen_ok:
                assert ok, f"{label} regressed with more memory"
            seen_ok = seen_ok or ok
