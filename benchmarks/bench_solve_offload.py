"""Extension: offloading the *solve* phase — where is the crossover?

The paper offloads only the factorization.  The solve sweeps are
memory-bound and sequential, so a GPU solve must amortize its transfer and
launch floor over many right-hand sides.  This bench sweeps the RHS count k
and reports the smallest k at which the GPU solve (factor already resident
on the device, the best case) beats the best-over-threads CPU solve.
"""

from __future__ import annotations

import numpy as np

from conftest import suite_names, write_result
from repro.analysis import format_table
from repro.numeric import factorize_rl_cpu
from repro.solve import solve_factored_cpu, solve_factored_gpu

KS = (1, 4, 16, 64, 256)


def sweep(names):
    from conftest import get_system

    rows = []
    crossovers = []
    rng = np.random.default_rng(42)
    for name in names:
        sy = get_system(name)
        storage = factorize_rl_cpu(sy.symb, sy.matrix).storage
        cells = [name]
        crossover = None
        for k in KS:
            B = rng.standard_normal((sy.symb.n, k))
            _, tc, _ = solve_factored_cpu(storage, B)
            _, tg, _ = solve_factored_gpu(storage, B, factor_resident=True)
            cells.append(f"{tc / tg:.2f}")
            if crossover is None and tg < tc:
                crossover = k
        crossovers.append(crossover)
        cells.append(str(crossover) if crossover else f"> {KS[-1]}")
        rows.append(tuple(cells))
    text = format_table(
        ["Matrix", *(f"speedup k={k}" for k in KS), "crossover k"],
        rows,
        title="Extension: GPU solve crossover (factor resident on device)")
    return text, crossovers


def test_solve_offload(benchmark):
    names = [n for n in suite_names() if n != "nlpkkt120"][:6]
    text, crossovers = benchmark.pedantic(lambda: sweep(names), rounds=1,
                                          iterations=1)
    write_result("solve_offload.txt", text)
    # a single RHS never pays off (the solve is launch/transfer bound) ...
    from conftest import get_system

    name = names[0]
    sy = get_system(name)
    storage = factorize_rl_cpu(sy.symb, sy.matrix).storage
    b = np.ones(sy.symb.n)
    _, tc, _ = solve_factored_cpu(storage, b)
    _, tg, _ = solve_factored_gpu(storage, b, factor_resident=True)
    assert tg > tc
    # ... but a finite crossover exists for every matrix in the sweep
    assert all(c is not None for c in crossovers)
