"""Wall-clock benchmark of the mixed-precision lane (fp32 + refinement).

Measures fp32-vs-fp64 factorization speedup on the *measured* backends —
the threaded task-DAG executor and the shared-memory worker-process pool
— on a 3-D grid Laplacian large enough for the BLAS to dominate the task
bodies (default ``40,40,16``; below that, scheduling overhead hides the
single-precision flop rate).  Every fp32 run is verified bit-identical
to the serial fp32 engine of the same granularity (the determinism
contract is precision-independent), and the accuracy side of the bargain
is checked on every invocation: ``solve_refined`` on an fp32 factor must
recover fp64-level residuals on a well-conditioned system, and must take
the fp64-refactorize fallback (bitwise equal to the fp64 oracle) on a
graded ill-conditioned one.

Exits non-zero when the best fp32 speedup at ``workers >= 2`` falls below
``--min-speedup`` (env default ``BENCH_MIXED_MIN_SPEEDUP``, else 1.3 —
the PR's acceptance threshold), or when any bit-identity / accuracy check
fails.  The snapshot lands in ``BENCH_MIXED.json``.

``--determinism-only`` skips the timing sweep: fp32 bit-reproducibility
across worker counts and both backends, plus the refinement-recovery and
stall-fallback checks — the mode CI's determinism job runs on every PR.

Run:  PYTHONPATH=src python benchmarks/bench_mixed_precision.py
      PYTHONPATH=src python benchmarks/bench_mixed_precision.py \\
          --shape 20,20,6 --determinism-only        # CI determinism gate
"""

from __future__ import annotations

import os
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).parent))

# The lane's win is the single-precision BLAS rate at task-level
# parallelism: pin the BLAS pool to one thread per call before
# NumPy/SciPy load the libraries.
from _blas import pin_blas_threads

pin_blas_threads()

import argparse
from functools import partial

import numpy as np

from harness import best_of, save_snapshot
from repro.api import plan as make_plan
from repro.numeric import factorize_rl_cpu, factorize_rlb_cpu
from repro.numeric.executor import factorize_executor
from repro.numeric.procpool import default_process_pool, factorize_process
from repro.sparse import SymmetricCSC, grid_laplacian
from repro.symbolic import analyze

SERIAL = {"coarse": factorize_rl_cpu, "fine": factorize_rlb_cpu}


def _identical(res, ref):
    if len(res.storage.panels) != len(ref.storage.panels):
        return False
    pairs = zip(res.storage.panels, ref.storage.panels)
    return all(np.array_equal(p, q) for p, q in pairs)


def graded_matrix(spread=5.0):
    """SPD with a graded diagonal scaling spanning ``10**spread``: fp32
    factorizes it, but refinement on the fp32 factor stalls well above
    fp64 accuracy — the fallback's reproducible trigger."""
    A = grid_laplacian((8, 8, 4))
    d = np.logspace(0, -spread, A.n)
    data = A.data.copy()
    for j in range(A.n):
        lo, hi = A.indptr[j], A.indptr[j + 1]
        data[lo:hi] = A.data[lo:hi] * d[A.indices[lo:hi]] * d[j]
    return SymmetricCSC(A.n, A.indptr, A.indices, data)


def check_determinism(symb, M, workers=4):
    """fp32 bit-reproducibility: ``workers=N`` twice, ``workers=1``, and
    the process pool, all against the serial fp32 engine."""
    failures = []
    for granularity in ("coarse", "fine"):
        ref = SERIAL[granularity](symb, M, dtype=np.float32)
        runs = {
            f"threads workers={workers} run 1": factorize_executor(
                symb, M, workers=workers, granularity=granularity,
                dtype=np.float32),
            f"threads workers={workers} run 2": factorize_executor(
                symb, M, workers=workers, granularity=granularity,
                dtype=np.float32),
            "threads workers=1": factorize_executor(
                symb, M, workers=1, granularity=granularity,
                dtype=np.float32),
            "process workers=2": factorize_process(
                symb, M, workers=2, granularity=granularity,
                dtype=np.float32),
        }
        for label, res in runs.items():
            ok = _identical(res, ref) and res.storage.dtype == np.float32
            mark = "ok" if ok else "MISMATCH"
            print(f"  {granularity:>6} {label:<26} vs serial fp32: {mark}")
            if not ok:
                failures.append((granularity, label))
    return failures


def check_accuracy():
    """The other half of the contract: fp32 + refinement must deliver
    fp64 answers — directly when conditioning allows, via the fp64
    refactorize fallback when it does not."""
    failures = []

    A = grid_laplacian((10, 10, 6))
    rng = np.random.default_rng(0)
    b = rng.standard_normal(A.n)
    plan = make_plan(A)
    f32 = plan.factorize(dtype=np.float32)
    direct = f32.residual_norm(f32.solve(b), b)
    out = f32.solve_refined(b, return_info=True)
    refined = f32.residual_norm(out.x, b)
    ok = out.converged and refined <= 1e-12
    print(f"  refinement recovery: {direct:.1e} -> {refined:.1e} "
          f"in {out.iterations} steps: {'ok' if ok else 'FAIL'}")
    if not ok:
        failures.append("refinement recovery")
    if "refine_fallback" in f32.result.extra:
        print("  unexpected fallback on a well-conditioned system: FAIL")
        failures.append("spurious fallback")

    G = graded_matrix(5.0)
    bg = np.random.default_rng(42).standard_normal(G.n)
    gplan = make_plan(G)
    g32 = gplan.factorize(dtype=np.float32)
    gout = g32.solve_refined(bg, return_info=True)
    fb = g32.result.extra.get("refine_fallback")
    oracle = gplan.factorize().solve_refined(bg, return_info=True)
    ok = (fb is not None and fb["reason"] == "stalled"
          and np.array_equal(gout.x, oracle.x))
    print(f"  stall fallback (graded matrix): "
          f"{'ok — bitwise fp64 oracle' if ok else 'FAIL'} "
          f"(reason: {fb['reason'] if fb else 'no fallback taken'})")
    if not ok:
        failures.append("stall fallback")
    return failures


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--shape",
        default="40,40,16",
        help="grid Laplacian shape, comma separated",
    )
    ap.add_argument(
        "--workers",
        default="1,4",
        help="comma-separated worker counts to sweep",
    )
    ap.add_argument(
        "--granularity",
        default="coarse",
        help="comma-separated granularities to sweep (coarse is the "
        "BLAS-bound one where the lane pays)",
    )
    ap.add_argument("--repeats", type=int, default=3,
                    help="timing repeats (best-of)")
    ap.add_argument(
        "--backends",
        default="threads,process",
        help="comma-separated measured backends to sweep",
    )
    ap.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="fail when the best fp32-vs-fp64 speedup at workers >= 2 is "
        "below this (env default: BENCH_MIXED_MIN_SPEEDUP, else 1.3)",
    )
    ap.add_argument(
        "--determinism-only",
        action="store_true",
        help="skip timings; only verify fp32 bit-reproducibility and the "
        "refinement accuracy/fallback contract",
    )
    args = ap.parse_args(argv)
    if args.min_speedup is None:
        args.min_speedup = float(
            os.environ.get("BENCH_MIXED_MIN_SPEEDUP", "1.3"))

    shape = tuple(int(t) for t in args.shape.split(","))
    A = grid_laplacian(shape)
    system = analyze(A)
    symb, M = system.symb, system.matrix
    print(
        f"grid_laplacian{shape}: n = {A.n}, nnz_lower = {A.nnz_lower}, "
        f"{symb.nsup} supernodes, cores = {os.cpu_count()}\n"
    )

    if args.determinism_only:
        print("fp32 determinism contract (bit-identical factors):")
        failures = check_determinism(symb, M)
        print("\naccuracy contract (fp64 recovery):")
        failures += check_accuracy()
        if failures:
            print(f"\nFAIL: {len(failures)} broken check(s)")
            return 1
        print("\nOK: fp32 factors bit-identical, fp64 accuracy recovered")
        return 0

    backends = [b.strip() for b in args.backends.split(",")]
    workers_list = [int(t) for t in args.workers.split(",")]
    granularities = [g.strip() for g in args.granularity.split(",")]
    best_speedup = 0.0
    ok = True
    rows = []
    for backend in backends:
        process = backend == "process"
        fn = factorize_process if process else factorize_executor
        for granularity in granularities:
            ref32 = SERIAL[granularity](symb, M, dtype=np.float32)
            print(f"{backend} backend, {granularity} granularity:")
            for workers in workers_list:
                kwargs = dict(workers=workers, granularity=granularity)
                if process:
                    # pool startup + warm-up are one-time costs; keep the
                    # pool hot outside the timed repeats
                    default_process_pool(workers, None)
                    fn(symb, M, **kwargs)
                    fn(symb, M, dtype=np.float32, **kwargs)
                t64, _ = best_of(partial(fn, symb, M, **kwargs),
                                 args.repeats)
                t32, res32 = best_of(
                    partial(fn, symb, M, dtype=np.float32, **kwargs),
                    args.repeats)
                bitwise = _identical(res32, ref32)
                ok = ok and bitwise
                speedup = t64 / t32
                if workers > 1:
                    best_speedup = max(best_speedup, speedup)
                print(
                    f"  workers={workers:<3d} fp64 {t64 * 1e3:8.2f} ms  "
                    f"fp32 {t32 * 1e3:8.2f} ms  ({speedup:5.2f}x, "
                    f"bit-identical: {'yes' if bitwise else 'NO'})"
                )
                rows.append({
                    "backend": backend,
                    "granularity": granularity,
                    "workers": workers,
                    "fp64_seconds": t64,
                    "fp32_seconds": t32,
                    "speedup": speedup,
                    "bit_identical": bitwise,
                })
            print()

    print("accuracy contract (fp64 recovery):")
    acc_failures = check_accuracy()
    print()

    path = save_snapshot(
        "mixed",
        {
            "shape": list(shape),
            "repeats": args.repeats,
            "backends": backends,
            "min_speedup": args.min_speedup,
            "best_speedup": best_speedup,
            "accuracy_failures": acc_failures,
            "rows": rows,
        },
    )
    if path:
        print(f"wrote snapshot {path}")
    if not ok:
        print("FAIL: fp32 factors are not bit-identical to serial fp32")
        return 1
    if acc_failures:
        print(f"FAIL: accuracy contract broken: {', '.join(acc_failures)}")
        return 1
    if best_speedup < args.min_speedup:
        print(f"FAIL: best fp32 speedup (workers >= 2) "
              f"{best_speedup:.2f}x < {args.min_speedup}x")
        return 1
    print(
        f"OK: best fp32 speedup {best_speedup:.2f}x >= "
        f"{args.min_speedup}x, all factors bit-identical, fp64 accuracy "
        "recovered"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
