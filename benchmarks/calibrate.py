"""Cost-model calibration tool (developer utility).

Extracts each suite matrix's symbolic schedule once (supernode shapes,
assembly traffic, block pairs) and then *replays* the four engines' timing
logic — without numerics — for many candidate machine-model constants,
scoring each against the paper's target shapes.  The replay mirrors
``repro.numeric.{rl,rlb,rl_gpu,rlb_gpu}`` exactly and is validated against
the real engines before any sweep (``--validate``).

This is how the defaults in ``repro.gpu.costmodel`` were chosen; it is kept
in the repository so the calibration is reproducible.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass

import numpy as np

from repro.gpu.costmodel import CPU_THREAD_CHOICES, MachineModel
from repro.sparse import get_entry
from repro.symbolic import analyze
from repro.symbolic.blocks import snode_blocks

LAUNCH = 2.0e-6  # SimulatedGpu.launch_overhead_s


@dataclass
class SnodeSched:
    m: int
    w: int
    b: int
    panel_bytes: int
    assembly_bytes: int          # RL scatter traffic (raw bytes)
    update_bytes: int            # 8 * b*b
    pairs: list                  # [(li, lj, raw_bytes, is_syrk)]


def extract(name):
    """Per-supernode schedule data for one suite matrix."""
    A = get_entry(name).builder()
    system = analyze(A)
    symb = system.symb
    sn = []
    col2sn = symb.col2sn
    for s in range(symb.nsup):
        m, w = symb.panel_shape(s)
        b = m - w
        below = symb.snode_below_rows(s)
        ab = 0
        if below.size:
            owners = col2sn[below]
            cut = np.flatnonzero(np.diff(owners)) + 1
            starts = np.concatenate(([0], cut))
            ends = np.concatenate((cut, [below.size]))
            for k0, k1 in zip(starts, ends):
                ab += 2 * 8 * (below.size - k0) * (k1 - k0)
        blocks = snode_blocks(symb, s)
        pairs = []
        for i, bi in enumerate(blocks):
            for bj in blocks[i:]:
                pairs.append((bi.length, bj.length,
                              2 * 8 * bi.length * bj.length, bj is bi))
        sn.append(SnodeSched(m, w, b, 8 * m * w, ab, 8 * b * b, pairs))
    return sn


# ----------------------------------------------------------------------
# replay of the engine timing logic
# ----------------------------------------------------------------------

def replay_rl_cpu(sn, mm):
    times = {t: 0.0 for t in CPU_THREAD_CHOICES}
    for s in sn:
        for t in times:
            times[t] += mm.cpu_kernel_seconds("potrf", n=s.w, threads=t)
            if s.b:
                times[t] += mm.cpu_kernel_seconds("trsm", m=s.b, n=s.w,
                                                  threads=t)
                times[t] += mm.cpu_kernel_seconds("syrk", n=s.b, k=s.w,
                                                  threads=t)
                times[t] += mm.assembly_seconds(s.assembly_bytes, threads=t)
    return min(times.values())


def replay_rlb_cpu(sn, mm):
    times = {t: 0.0 for t in CPU_THREAD_CHOICES}
    for s in sn:
        for t in times:
            times[t] += mm.cpu_kernel_seconds("potrf", n=s.w, threads=t)
            if s.b:
                times[t] += mm.cpu_kernel_seconds("trsm", m=s.b, n=s.w,
                                                  threads=t)
        for (li, lj, _, is_syrk) in s.pairs:
            for t in times:
                if is_syrk:
                    times[t] += mm.cpu_kernel_seconds("syrk", n=li, k=s.w,
                                                      threads=t)
                else:
                    times[t] += mm.cpu_kernel_seconds("gemm", m=lj, n=li,
                                                      k=s.w, threads=t)
    return min(times.values())


class _Clocks:
    def __init__(self):
        self.cpu = self.gpu = self.copy_in = self.copy_out = 0.0

    def launch(self):
        self.cpu += LAUNCH

    def kern(self, dt, ready=0.0):
        self.launch()
        start = max(self.gpu, self.cpu, ready)
        self.gpu = start + dt
        return self.gpu

    def xfer(self, dt, ready=0.0, direction="d2h"):
        self.launch()
        if direction == "h2d":
            start = max(self.copy_in, self.cpu, ready)
            self.copy_in = start + dt
            return self.copy_in
        start = max(self.copy_out, self.cpu, ready)
        self.copy_out = start + dt
        return self.copy_out


def replay_rl_gpu(sn, mm, threshold):
    tl = _Clocks()
    t = mm.gpu_run_cpu_threads
    for s in sn:
        if mm.scaled_panel_entries(s.m * s.w) < threshold:
            tl.cpu += mm.cpu_kernel_seconds("potrf", n=s.w, threads=t)
            if s.b:
                tl.cpu += mm.cpu_kernel_seconds("trsm", m=s.b, n=s.w,
                                                threads=t)
                tl.cpu += mm.cpu_kernel_seconds("syrk", n=s.b, k=s.w,
                                                threads=t)
                tl.cpu += mm.assembly_seconds(s.assembly_bytes, threads=t)
            continue
        pr = tl.xfer(mm.transfer_seconds(s.panel_bytes), direction="h2d")
        pr = tl.kern(mm.gpu_kernel_seconds("potrf", n=s.w), ready=pr)
        if s.b:
            pr = tl.kern(mm.gpu_kernel_seconds("trsm", m=s.b, n=s.w),
                         ready=pr)
        back = tl.xfer(mm.transfer_seconds(s.panel_bytes), ready=pr)
        if s.b:
            tl.launch()  # alloc_like
            ur = tl.kern(mm.gpu_kernel_seconds("syrk", n=s.b, k=s.w),
                         ready=pr)
            done = tl.xfer(mm.transfer_seconds(s.update_bytes), ready=ur)
            tl.cpu = max(tl.cpu, done)
            tl.cpu += mm.assembly_seconds(s.assembly_bytes, threads=t)
        tl.cpu = max(tl.cpu, back)
    return tl.cpu


def replay_rlb_gpu(sn, mm, threshold, inflight=2):
    tl = _Clocks()
    t = mm.gpu_run_cpu_threads
    for s in sn:
        if mm.scaled_panel_entries(s.m * s.w) < threshold:
            tl.cpu += mm.cpu_kernel_seconds("potrf", n=s.w, threads=t)
            if s.b:
                tl.cpu += mm.cpu_kernel_seconds("trsm", m=s.b, n=s.w,
                                                threads=t)
            for (li, lj, _, is_syrk) in s.pairs:
                if is_syrk:
                    tl.cpu += mm.cpu_kernel_seconds("syrk", n=li, k=s.w,
                                                    threads=t)
                else:
                    tl.cpu += mm.cpu_kernel_seconds("gemm", m=lj, n=li,
                                                    k=s.w, threads=t)
            continue
        pr = tl.xfer(mm.transfer_seconds(s.panel_bytes), direction="h2d")
        pr = tl.kern(mm.gpu_kernel_seconds("potrf", n=s.w), ready=pr)
        if s.b:
            pr = tl.kern(mm.gpu_kernel_seconds("trsm", m=s.b, n=s.w),
                         ready=pr)
        back = tl.xfer(mm.transfer_seconds(s.panel_bytes), ready=pr)
        fifo = []
        for (li, lj, raw, is_syrk) in s.pairs:
            if len(fifo) >= inflight:
                done, ab = fifo.pop(0)
                tl.cpu = max(tl.cpu, done)
                tl.cpu += mm.assembly_seconds(ab, threads=t)
            tl.launch()  # alloc_like
            if is_syrk:
                kr = tl.kern(mm.gpu_kernel_seconds("syrk", n=li, k=s.w),
                             ready=pr)
            else:
                kr = tl.kern(mm.gpu_kernel_seconds("gemm", m=lj, n=li,
                                                   k=s.w), ready=pr)
            done = tl.xfer(mm.transfer_seconds(raw / 2), ready=kr)
            fifo.append((done, raw))
        while fifo:
            done, ab = fifo.pop(0)
            tl.cpu = max(tl.cpu, done)
            tl.cpu += mm.assembly_seconds(ab, threads=t)
        tl.cpu = max(tl.cpu, back)
    return tl.cpu


def evaluate(sched, mm, rl_thr=600_000, rlb_thr=750_000):
    out = {}
    for name, sn in sched.items():
        rl = replay_rl_cpu(sn, mm)
        rlb = replay_rlb_cpu(sn, mm)
        cb = min(rl, rlb)
        out[name] = {
            "rl_c": rl, "rlb_c": rlb, "cpu_best": cb,
            "rl_g": replay_rl_gpu(sn, mm, rl_thr),
            "rlb_g": replay_rlb_gpu(sn, mm, rlb_thr),
            "rl_g0": replay_rl_gpu(sn, mm, 0),
        }
    return out


def report(results):
    print(f"{'matrix':<14} {'RL_C':>7} {'RLB/RL':>6} {'sRLG':>5} "
          f"{'sRLBG':>6} {'sTHR0':>6}")
    for name, r in results.items():
        print(f"{name:<14} {r['rl_c']:>7.2f} "
              f"{r['rlb_c'] / r['rl_c']:>6.2f} "
              f"{r['cpu_best'] / r['rl_g']:>5.2f} "
              f"{r['cpu_best'] / r['rlb_g']:>6.2f} "
              f"{r['cpu_best'] / r['rl_g0']:>6.2f}")


if __name__ == "__main__":
    names = sys.argv[1:] or ["CurlCurl_2", "PFlow_742", "Serena",
                             "Bump_2911", "Queen_4147", "nlpkkt120"]
    sched = {n: extract(n) for n in names}
    report(evaluate(sched, MachineModel()))
