"""Shared fixtures for the benchmark suite.

``pytest benchmarks/ --benchmark-only`` regenerates every table and figure.
By default a representative 9-matrix subset of the paper's 21-matrix suite
is used so the whole run stays in the minutes range; set ``REPRO_SUITE=full``
to run all 21 matrices (what EXPERIMENTS.md reports).

Generated tables are printed and also written to ``benchmarks/results/``.
"""

from __future__ import annotations

import os
import pathlib
import sys

import pytest

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from harness import SUITE_NAMES  # noqa: E402

#: Representative subset: two small, two 2-D/EM, two mid FEM, the three
#: largest (including the out-of-memory case).
MINI_SUITE = [
    "CurlCurl_2", "dielFilterV2real", "PFlow_742", "bone010", "audikw_1",
    "Serena", "Bump_2911", "nlpkkt120", "Queen_4147",
]

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def suite_names():
    if os.environ.get("REPRO_SUITE", "").lower() == "full":
        return list(SUITE_NAMES)
    return list(MINI_SUITE)


@pytest.fixture(scope="session")
def suite_runs():
    """All suite matrices factorized by the four methods (cached)."""
    from harness import run_matrix

    return {n: run_matrix(n, system=get_system(n)) for n in suite_names()}


_system_cache: dict = {}


def get_system(name):
    """Analyzed system for a suite matrix, cached across bench modules."""
    if name not in _system_cache:
        from repro.sparse import get_entry
        from repro.symbolic import analyze

        _system_cache[name] = analyze(get_entry(name).builder())
    return _system_cache[name]


def write_result(name, text):
    """Persist a generated table/figure under benchmarks/results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / name
    path.write_text(text + "\n")
    print(f"\n[{name}]\n{text}")
    return path
