"""Wall-clock benchmark of the level-scheduled parallel triangular solves.

Measures, on a 3-D grid Laplacian (default ``24,24,8``), the many-RHS solve
throughput of the level-scheduled parallel sweeps
(:meth:`repro.api.Factor.solve` with ``workers=N``) against the serial
sweeps, over two serving-shaped workloads:

* ``block``  — ONE ``(n, K)`` block of right-hand sides (level-3 sweeps;
  task parallelism comes from the elimination-tree level schedule);
* ``many``   — ``--solves S`` independent right-hand-side blocks solved on
  ONE shared worker pool (:meth:`repro.api.Factor.solve_many`; cross-solve
  parallelism fills the dependency stalls near the tree root, the same
  trick batched factorization plays).

Every parallel solution is verified **bit-identical** to the serial sweep
(the solve-side determinism contract).  Exits non-zero when the BEST
speedup over the ``workers x workload`` sweep falls below ``--min-speedup``
(default: the ``BENCH_SOLVE_MIN_SPEEDUP`` env var, else 1.3) so CI can run
it as a loud perf-regression guard and relax the bar on noisy/low-core
shared runners without editing the workflow — gating on the best
configuration hedges against runners where per-task dispatch overhead
dominates (same protocol as ``bench_executor.py`` / ``bench_batch.py``).
All timings are best-of-``--repeats``; BLAS is pinned to one thread per
call (MA87-style): task-level parallelism is the thing being measured.

``--determinism-only`` skips the timing gate and only checks the
bit-identity contract across worker counts and repeated runs — the CI
``determinism`` job's solve-side extension.

Run:  PYTHONPATH=src python benchmarks/bench_solve_parallel.py
      BENCH_SOLVE_MIN_SPEEDUP=1.05 PYTHONPATH=src \\
          python benchmarks/bench_solve_parallel.py --shape 20,20,8   # CI
"""

from __future__ import annotations

import os
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).parent))

# Task-level parallelism is the thing being measured: pin the BLAS pool to
# one thread per call (MA87-style) *before* NumPy/SciPy load the libraries.
from _blas import pin_blas_threads

pin_blas_threads()

import argparse

import numpy as np

from harness import best_of
import repro
from repro.sparse import grid_laplacian


def build_workloads(A, rhs, solves, seed=0):
    rng = np.random.default_rng(seed)
    block = rng.standard_normal((A.n, rhs))
    many = [rng.standard_normal((A.n, max(1, rhs // 4)))
            for _ in range(solves)]
    return block, many


def check_identical(xs, refs):
    if isinstance(xs, list):
        return all(np.array_equal(x, r) for x, r in zip(xs, refs))
    return np.array_equal(xs, refs)


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--shape", default="24,24,8",
                    help="grid Laplacian shape, comma separated")
    ap.add_argument("--rhs", type=int, default=64,
                    help="columns of the (n, K) block workload "
                         "(default: 64); the many-solve workload uses "
                         "K/4-column blocks")
    ap.add_argument("--solves", type=int, default=8,
                    help="independent solves of the pooled many-RHS "
                         "workload (default: 8)")
    ap.add_argument("--workers", default="1,2,4",
                    help="comma-separated worker counts to sweep")
    ap.add_argument("--repeats", type=int, default=3,
                    help="timing repeats (best-of)")
    ap.add_argument("--determinism-only", action="store_true",
                    help="skip the timing gate; only verify bit-identity "
                         "across worker counts and repeated runs")
    ap.add_argument(
        "--min-speedup",
        type=float,
        default=float(os.environ.get("BENCH_SOLVE_MIN_SPEEDUP", "1.3")),
        help="fail when the best parallel-vs-serial solve speedup is "
             "below this (env default: BENCH_SOLVE_MIN_SPEEDUP)",
    )
    args = ap.parse_args(argv)

    shape = tuple(int(t) for t in args.shape.split(","))
    workers_sweep = [int(w) for w in args.workers.split(",")]
    A = grid_laplacian(shape)
    plan = repro.plan(A)
    factor = plan.factorize(engine="rl")
    sp = plan.solve_plan()
    block, many = build_workloads(A, args.rhs, args.solves)
    print(f"grid_laplacian{shape}: n = {A.n}, {plan.nsup} supernodes, "
          f"{sp.nlevels} levels (max width {sp.max_parallelism}, "
          f"avg {sp.avg_parallelism:.1f}), cores = {os.cpu_count()}")
    print(f"workloads: block = (n, {args.rhs}), "
          f"many = {args.solves} x (n, {max(1, args.rhs // 4)})\n")

    # warm every pattern cache (solve schedule, scatter plan) untimed
    ref_block = factor.solve(block)
    ref_many = factor.solve_many(many)
    factor.solve(block, workers=workers_sweep[0])

    if args.determinism_only:
        ok = True
        for w in workers_sweep:
            for _ in range(2):  # repeated runs must agree exactly too
                ok &= check_identical(factor.solve(block, workers=w),
                                      ref_block)
                ok &= check_identical(factor.solve_many(many, workers=w),
                                      ref_many)
            print(f"  workers={w}: bit-identical "
                  f"{'yes' if ok else 'NO'}")
        if not ok:
            print("FAIL: parallel solves are not bit-identical to the "
                  "serial sweeps")
            return 1
        print("OK: parallel solves bit-identical to the serial sweeps "
              f"for workers in {workers_sweep} (block + pooled many-RHS)")
        return 0

    t_ser_block, _ = best_of(lambda: factor.solve(block), args.repeats)
    t_ser_many, _ = best_of(lambda: factor.solve_many(many), args.repeats)
    print(f"serial: block {t_ser_block * 1e3:8.2f} ms | "
          f"many {t_ser_many * 1e3:8.2f} ms   (best of {args.repeats})")

    best_speedup = 0.0
    all_identical = True
    for w in workers_sweep:
        t_block, x_block = best_of(lambda: factor.solve(block, workers=w),
                                   args.repeats)
        t_many, x_many = best_of(lambda: factor.solve_many(many, workers=w),
                                 args.repeats)
        ident = (check_identical(x_block, ref_block)
                 and check_identical(x_many, ref_many))
        all_identical = all_identical and ident
        s_block = t_ser_block / t_block
        s_many = t_ser_many / t_many
        best_speedup = max(best_speedup, s_block, s_many)
        print(f"  workers={w}: block {t_block * 1e3:8.2f} ms "
              f"({s_block:5.2f}x) | many {t_many * 1e3:8.2f} ms "
              f"({s_many:5.2f}x) | bit-identical: "
              f"{'yes' if ident else 'NO'}")
    print()

    if not all_identical:
        print("FAIL: parallel solves are not bit-identical to the serial "
              "sweeps")
        return 1
    if best_speedup < args.min_speedup:
        print(f"FAIL: best solve speedup {best_speedup:.2f}x "
              f"< {args.min_speedup}x")
        return 1
    print(f"OK: best solve speedup {best_speedup:.2f}x >= "
          f"{args.min_speedup}x, all solutions bit-identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
