"""Figure 3 reproduction: Dolan–Moré performance profile of the four
factorization methods (RL_C, RLB_C, RL_G, RLB_G).

Paper reference: "the GPU version of RL is unequivocally the best, except
for one matrix for which RL cannot compute the factorization.  RLB closely
follows RL.  Both RL and RLB using GPU ... are much better than their
CPU-only versions."
"""

from __future__ import annotations

from conftest import suite_names, write_result
from repro.analysis import performance_profile, render_ascii


def build_profile(runs):
    times = {"RL_C": [], "RLB_C": [], "RL_G": [], "RLB_G": []}
    for name in suite_names():
        t = runs[name].times_for_profile()
        for k in times:
            times[k].append(t[k])
    return performance_profile(times)


def test_fig3_performance_profile(suite_runs, benchmark):
    profile = benchmark.pedantic(lambda: build_profile(suite_runs),
                                 rounds=1, iterations=1)
    art = render_ascii(profile)
    areas = "\n".join(
        f"area({m}) = {profile.area(m):.3f}" for m in profile.curves)
    write_result("fig3_performance_profile.txt", art + "\n\n" + areas)

    # paper shape assertions
    # 1. a GPU method wins the profile
    assert profile.winner() in ("RL_G", "RLB_G")
    # 2. both GPU methods dominate both CPU methods in area
    gpu_min = min(profile.area("RL_G"), profile.area("RLB_G"))
    cpu_max = max(profile.area("RL_C"), profile.area("RLB_C"))
    assert gpu_min > cpu_max, "GPU methods must dominate CPU-only methods"
    # 3. RL_G's curve is capped below 1.0 iff nlpkkt120 is in the subset
    if "nlpkkt120" in suite_names():
        n = len(suite_names())
        assert profile.curves["RL_G"][-1] <= (n - 1) / n + 1e-9
        assert profile.curves["RLB_G"][-1] == 1.0
