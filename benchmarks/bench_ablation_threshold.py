"""Ablation: the CPU/GPU supernode-size threshold sweep.

This is how the paper's "determined empirically" thresholds (600,000 panel
entries for RL, 750,000 for RLB on Perlmutter) — and this reproduction's
scaled defaults — are found: sweep the threshold, total the suite time,
pick the minimum.
"""

from __future__ import annotations

from conftest import suite_names, write_result
from repro.analysis import format_table
from repro.numeric import (
    DEFAULT_RL_THRESHOLD,
    DEFAULT_RLB_THRESHOLD,
    factorize_rl_gpu,
    factorize_rlb_gpu,
)

THRESHOLDS = [0, 50_000, 100_000, 200_000, 400_000, 600_000, 1_000_000,
              10 ** 13]
BIG_MEM = 10 ** 15


def sweep(names):
    from conftest import get_system

    systems = {n: get_system(n) for n in names}
    rows = []
    totals_rl, totals_rlb = {}, {}
    for thr in THRESHOLDS:
        t_rl = t_rlb = 0.0
        for n in names:
            sy = systems[n]
            t_rl += factorize_rl_gpu(sy.symb, sy.matrix, threshold=thr,
                                     device_memory=BIG_MEM).modeled_seconds
            t_rlb += factorize_rlb_gpu(sy.symb, sy.matrix, version=2,
                                       threshold=thr,
                                       device_memory=BIG_MEM).modeled_seconds
        totals_rl[thr], totals_rlb[thr] = t_rl, t_rlb
        label = "GPU-only" if thr == 0 else (
            "CPU-only" if thr >= 10 ** 13 else f"{thr:,}")
        rows.append((label, f"{t_rl:.4f}", f"{t_rlb:.4f}"))
    text = format_table(
        ["threshold (dilated entries)", "RL-GPU total (s)",
         "RLB-GPU total (s)"],
        rows, title="Ablation: supernode-size threshold sweep")
    return text, totals_rl, totals_rlb


def test_threshold_sweep(benchmark):
    names = [n for n in suite_names() if n != "nlpkkt120"][:6]
    text, totals_rl, totals_rlb = benchmark.pedantic(
        lambda: sweep(names), rounds=1, iterations=1)
    best_rl = min(totals_rl, key=totals_rl.get)
    best_rlb = min(totals_rlb, key=totals_rlb.get)
    text += (f"\n\nbest RL threshold : {best_rl:,} "
             f"(library default {DEFAULT_RL_THRESHOLD:,})"
             f"\nbest RLB threshold: {best_rlb:,} "
             f"(library default {DEFAULT_RLB_THRESHOLD:,})")
    write_result("ablation_threshold.txt", text)
    # an interior optimum exists: both extremes lose to the best interior
    interior_rl = min(totals_rl[t] for t in THRESHOLDS[1:-1])
    assert interior_rl <= totals_rl[0]
    assert interior_rl <= totals_rl[THRESHOLDS[-1]]
    # thresholding helps both methods: defaults beat both extremes.
    # (The raw suite-total optimum of the sweep sits lower than the library
    # defaults; the defaults deliberately stay above ~100k because the
    # surrogate scale inverts the paper's RL-vs-RLB ordering below that —
    # see repro/numeric/threshold.py and the EXPERIMENTS.md deviations.)
    assert totals_rl[DEFAULT_RL_THRESHOLD] <= totals_rl[0]
    assert totals_rl[DEFAULT_RL_THRESHOLD] <= totals_rl[THRESHOLDS[-1]]
    assert totals_rlb[DEFAULT_RLB_THRESHOLD] <= totals_rlb[0]
    assert totals_rlb[DEFAULT_RLB_THRESHOLD] <= totals_rlb[THRESHOLDS[-1]]
