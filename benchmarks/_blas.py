"""Benchmark-side BLAS pinning (import before numpy).

Thin loader around :mod:`repro.numeric.blas_limits` — the helper must run
*before* numpy first loads its BLAS, so importing the ``repro`` package
(which imports numpy) to reach it would defeat the point.  The module is
numpy-free by contract, so it is executed here directly from its source
file instead.

Usage, at the very top of a benchmark (before any numpy import)::

    import sys, pathlib
    sys.path.insert(0, str(pathlib.Path(__file__).parent))
    from _blas import pin_blas_threads

    pin_blas_threads()  # setdefault: an exported env override still wins
"""

import importlib.util
import pathlib

_SOURCE = (pathlib.Path(__file__).resolve().parent.parent
           / "src" / "repro" / "numeric" / "blas_limits.py")
_spec = importlib.util.spec_from_file_location("_repro_blas_limits", _SOURCE)
_blas_limits = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(_blas_limits)

BLAS_ENV_VARS = _blas_limits.BLAS_ENV_VARS


def pin_blas_threads(n=1, *, override=False):
    """Pin the BLAS/OpenMP env knobs to ``n`` threads (``setdefault``
    semantics unless ``override=True``); returns the mapping in effect.
    Call before numpy's first import — BLAS reads these at load time."""
    return _blas_limits.limit_blas_threads(n, override=override)
