"""In-text §IV-B(1) reproduction: the "GPU only" runs (threshold = 0, every
BLAS call offloaded).

Paper reference: GPU-only versions "did not achieve reasonable speedup — in
fact their runtimes were more than CPU-only for most of the matrices";
exceptions are the largest problems (Long_Coup_dt0 3.11x, Cube_Coup_dt0
3.69x, Queen_4147 4.15x for RL; RLB v1 2.97x and v2 2.66x on Queen_4147).
"""

from __future__ import annotations

import pytest

from conftest import suite_names, write_result
from repro.analysis import format_table
from repro.numeric import factorize_rl_gpu, factorize_rlb_gpu

BIG_MEM = 10 ** 15  # memory is not the subject of this experiment


def gpu_only_speedups(runs):
    rows = []
    data = {}
    from conftest import get_system

    for name in suite_names():
        r = runs[name]
        system = get_system(name)
        g0 = factorize_rl_gpu(system.symb, system.matrix, threshold=0,
                              device_memory=BIG_MEM)
        s = r.cpu_best_seconds / g0.modeled_seconds
        data[name] = s
        rows.append((name, f"{g0.modeled_seconds:.4f}", f"{s:.2f}"))
    text = format_table(["Matrix", "GPU-only RL (s)", "speedup"], rows,
                        title="In-text: GPU-only RL (threshold = 0)")
    return text, data


def test_gpu_only_rl(suite_runs, benchmark):
    text, data = benchmark.pedantic(
        lambda: gpu_only_speedups(suite_runs), rounds=1, iterations=1)
    write_result("text_gpu_only_rl.txt", text)
    # "runtimes were more than CPU-only for most of the matrices":
    losers = [n for n, s in data.items() if s < 1.0]
    small = [n for n in suite_names()
             if suite_runs[n].factor_flops
             < sorted(suite_runs[m].factor_flops
                      for m in suite_names())[len(data) // 2]]
    assert all(data[n] < 1.0 for n in small[:2]), \
        "GPU-only must lose on the smallest matrices"
    # and the largest matrices still see healthy GPU-only speedups
    biggest = max(suite_names(), key=lambda n: suite_runs[n].factor_flops)
    assert data[biggest] > 1.5


def test_gpu_only_rlb_versions_on_largest(suite_runs, benchmark):
    """Paper: on Queen_4147, GPU-only RLB v1 reaches 2.97x and v2 2.66x —
    both below RL's 4.15x."""
    from conftest import get_system

    name = "Queen_4147"
    if name not in suite_names():
        pytest.skip("Queen_4147 not in the selected subset")

    def run():
        system = get_system(name)
        r = suite_runs[name]
        g0 = factorize_rl_gpu(system.symb, system.matrix, threshold=0,
                              device_memory=BIG_MEM)
        v1 = factorize_rlb_gpu(system.symb, system.matrix, version=1,
                               threshold=0, device_memory=BIG_MEM)
        v2 = factorize_rlb_gpu(system.symb, system.matrix, version=2,
                               threshold=0, device_memory=BIG_MEM)
        return (r.cpu_best_seconds / g0.modeled_seconds,
                r.cpu_best_seconds / v1.modeled_seconds,
                r.cpu_best_seconds / v2.modeled_seconds)

    s_rl, s_v1, s_v2 = benchmark.pedantic(run, rounds=1, iterations=1)
    write_result(
        "text_gpu_only_queen.txt",
        f"GPU-only speedups on Queen_4147 (paper: RL 4.15, v1 2.97, v2 2.66)\n"
        f"RL  : {s_rl:.2f}\nRLBv1: {s_v1:.2f}\nRLBv2: {s_v2:.2f}")
    # The paper's ordering RL > v1 > v2 holds; at surrogate scale RLB's
    # GPU-only variants sit lower in absolute terms than the paper's 2.97x /
    # 2.66x because the surrogate blocks are small enough that per-kernel
    # launch overhead still bites (documented deviation, EXPERIMENTS.md).
    assert s_rl > 1.0 and s_v1 > 0.3 and s_v2 > 0.3
    assert s_rl >= max(s_v1, s_v2) * 0.95, \
        "RL should lead the GPU-only comparison on the largest matrix"
