"""Wall-clock micro-benchmarks (pytest-benchmark) of the library's hot
paths: real Python/NumPy execution time, independent of the modeled clock.

These guard against performance regressions in the reproduction code
itself: symbolic analysis, the four factorization engines, and the
triangular solves.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.numeric import (
    factorize_left_looking,
    factorize_rl_cpu,
    factorize_rl_gpu,
    factorize_rlb_cpu,
    factorize_rlb_gpu,
)
from repro.solve import solve_factored
from repro.sparse import build_matrix, grid_laplacian
from repro.symbolic import analyze

BIG_MEM = 10 ** 15


@pytest.fixture(scope="module")
def bench_system():
    return analyze(build_matrix("bone010"))


def test_wall_symbolic_analysis(benchmark):
    A = grid_laplacian((10, 10, 6))
    benchmark.pedantic(lambda: analyze(A), rounds=2, iterations=1)


def test_wall_rl_cpu(bench_system, benchmark):
    benchmark.pedantic(
        lambda: factorize_rl_cpu(bench_system.symb, bench_system.matrix),
        rounds=3, iterations=1)


def test_wall_rlb_cpu(bench_system, benchmark):
    benchmark.pedantic(
        lambda: factorize_rlb_cpu(bench_system.symb, bench_system.matrix),
        rounds=3, iterations=1)


def test_wall_left_looking(bench_system, benchmark):
    benchmark.pedantic(
        lambda: factorize_left_looking(bench_system.symb,
                                       bench_system.matrix),
        rounds=3, iterations=1)


def test_wall_rl_gpu(bench_system, benchmark):
    benchmark.pedantic(
        lambda: factorize_rl_gpu(bench_system.symb, bench_system.matrix,
                                 device_memory=BIG_MEM),
        rounds=3, iterations=1)


def test_wall_rlb_gpu_v2(bench_system, benchmark):
    benchmark.pedantic(
        lambda: factorize_rlb_gpu(bench_system.symb, bench_system.matrix,
                                  version=2, device_memory=BIG_MEM),
        rounds=3, iterations=1)


def test_wall_triangular_solve(bench_system, benchmark):
    res = factorize_rl_cpu(bench_system.symb, bench_system.matrix)
    b = np.ones(bench_system.matrix.n)
    benchmark.pedantic(lambda: solve_factored(res.storage, b),
                       rounds=5, iterations=1)
