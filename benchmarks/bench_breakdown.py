"""Analysis: per-kernel-class modeled time — the paper's design premises.

Regenerates the "where does the time go" table for a representative subset:
SYRK carries the flop bulk of RL (why offloading the update computation is
the win), GEMM carries RLB's (why its call count matters), and the
update-matrix D2H is the dominant transfer (why bandwidth, not latency,
is what the paper finds important).
"""

from __future__ import annotations

from conftest import suite_names, write_result
from repro.analysis import breakdown, render_breakdowns

METHODS = ("rl", "rlb", "rl_gpu", "rlb_gpu")


def build(names):
    from conftest import get_system

    sections = []
    checks = []
    for name in names:
        symb = get_system(name).symb
        bs = [breakdown(symb, method=m) for m in METHODS]
        sections.append(render_breakdowns(
            bs, title=f"{name} — modeled seconds by cost class"))
        by = {b.method: b for b in bs}
        checks.append((name, by))
    return "\n\n".join(sections), checks


def test_breakdown(benchmark):
    names = [n for n in suite_names()
             if n in ("Serena", "Bump_2911", "Queen_4147")] or \
        suite_names()[:3]
    text, checks = benchmark.pedantic(lambda: build(names), rounds=1,
                                      iterations=1)
    write_result("breakdown.txt", text)
    for name, by in checks:
        # SYRK is RL's flop bulk; RLB replaces much of it with GEMM
        assert by["rl"].seconds["syrk"] > by["rl"].seconds["potrf"]
        assert by["rlb"].seconds["gemm"] > 0
        assert by["rl"].seconds.get("gemm", 0.0) == 0.0
        # the update-matrix D2H dominates the H2D panel upload in RL-GPU
        assert by["rl_gpu"].seconds["d2h"] > by["rl_gpu"].seconds["h2d"]
        # offload shrinks the total modeled resource time
        assert by["rl_gpu"].total < by["rl"].total
