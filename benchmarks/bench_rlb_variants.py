"""In-text §IV-B(2) reproduction: RLB version 1 (batched update transfer)
vs version 2 (per-block transfer).

Paper reference: "On larger matrices, RLB with a single update matrix is up
to 9 percent better than RLB with multiple update matrices whereas on
smaller matrices, RLB with multiple update matrices is up to 3 percent
better ... for data transfer between CPU and GPU the latency is negligible
but the bandwidth is important."
"""

from __future__ import annotations

from conftest import suite_names, write_result
from repro.analysis import format_table
from repro.numeric import factorize_rlb_gpu

BIG_MEM = 10 ** 15


def compare_versions():
    rows = []
    ratios = {}
    from conftest import get_system

    for name in suite_names():
        system = get_system(name)
        v1 = factorize_rlb_gpu(system.symb, system.matrix, version=1,
                               device_memory=BIG_MEM)
        v2 = factorize_rlb_gpu(system.symb, system.matrix, version=2,
                               device_memory=BIG_MEM)
        ratio = v1.modeled_seconds / v2.modeled_seconds
        ratios[name] = (ratio, v1.gpu_stats.peak_memory,
                        v2.gpu_stats.peak_memory)
        rows.append((
            name,
            f"{v1.modeled_seconds:.4f}",
            f"{v2.modeled_seconds:.4f}",
            f"{100 * (ratio - 1):+.1f}%",
            f"{v1.gpu_stats.peak_memory / 2**20:.0f}",
            f"{v2.gpu_stats.peak_memory / 2**20:.0f}",
        ))
    text = format_table(
        ["Matrix", "v1 (s)", "v2 (s)", "v1 vs v2", "v1 peak MiB",
         "v2 peak MiB"],
        rows, title="In-text: RLB batched (v1) vs per-block (v2) transfers")
    return text, ratios


def test_rlb_v1_vs_v2(suite_runs, benchmark):
    text, ratios = benchmark.pedantic(compare_versions, rounds=1,
                                      iterations=1)
    write_result("text_rlb_variants.txt", text)
    # times must stay close — the paper's "latency negligible" regime
    # (within ~15 % either way at surrogate scale)
    for name, (ratio, _, _) in ratios.items():
        assert 0.8 < ratio < 1.25, \
            f"{name}: v1/v2 = {ratio:.2f}, outside the close-race regime"
    # the real difference is memory: v2's peak footprint is never larger
    for name, (_, p1, p2) in ratios.items():
        assert p2 <= p1 * 1.01, f"{name}: v2 must not use more device memory"
    # and on at least one large matrix v2 saves a meaningful factor
    biggest = max(suite_names(), key=lambda n: suite_runs[n].factor_flops)
    _, p1, p2 = ratios[biggest]
    assert p2 < p1, "v2 must reduce peak memory on the largest matrix"
