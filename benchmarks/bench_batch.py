"""Wall-clock benchmark of batched same-pattern serving.

Measures, on a 3-D grid Laplacian (default ``24,24,8``), the throughput of
:meth:`repro.api.SymbolicPlan.factorize_batch` — B same-pattern numeric
factorizations pushed through ONE threaded task-DAG worker pool — against
the pre-batching protocol: a serial same-plan ``factorize`` loop (shared
symbolic work, one numeric factorization after another).  Every batch
factor is verified bit-identical to the looped serial factor of the same
matrix (the determinism contract extends across the batch dimension).

Sweeps the threaded engines (default ``rlb_par,rl_par``, each against its
serial twin) and exits non-zero when the BEST batch speedup falls below
``--min-speedup`` (default: the ``BENCH_BATCH_MIN_SPEEDUP`` env var, else
1.5), so CI can run it as a loud perf-regression guard and relax the bar
on noisy shared runners without editing the workflow; gating on the best
engine hedges against low-core runners where fine-granularity task
dispatch dominates (same protocol as ``bench_executor.py``).  All timings are best-of-``--repeats``
to reject scheduler noise.  BLAS is pinned to one thread per call
(MA87-style): task-level parallelism is the thing being measured.

Run:  PYTHONPATH=src python benchmarks/bench_batch.py
      BENCH_BATCH_MIN_SPEEDUP=1.2 PYTHONPATH=src \\
          python benchmarks/bench_batch.py --shape 16,16,6 --batch 8  # CI
"""

from __future__ import annotations

import os
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).parent))

# Task-level parallelism is the thing being measured: pin the BLAS pool to
# one thread per call (MA87-style) *before* NumPy/SciPy load the libraries.
from _blas import pin_blas_threads

pin_blas_threads()

import argparse

import numpy as np

from harness import best_of
import repro
from repro.numeric.registry import get_engine, serial_twin
from repro.sparse import grid_laplacian, spd_value_sweep


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--shape", default="24,24,8",
                    help="grid Laplacian shape, comma separated")
    ap.add_argument("--batch", type=int, default=8,
                    help="number of same-pattern matrices (default: 8)")
    ap.add_argument("--engine", default="rlb_par,rl_par",
                    help="comma-separated threaded engines to sweep; the "
                         "guard gates on the BEST speedup (hedges against "
                         "low-core runners where fine-granularity task "
                         "dispatch overhead dominates, like "
                         "bench_executor's workers x granularity sweep)")
    ap.add_argument("--workers", type=int, default=None,
                    help="worker threads (default: the executor default)")
    ap.add_argument("--repeats", type=int, default=3,
                    help="timing repeats (best-of)")
    ap.add_argument(
        "--min-speedup",
        type=float,
        default=float(os.environ.get("BENCH_BATCH_MIN_SPEEDUP", "1.5")),
        help="fail when the batched-vs-looped speedup is below this "
             "(env default: BENCH_BATCH_MIN_SPEEDUP)",
    )
    args = ap.parse_args(argv)

    engines = [e.strip() for e in args.engine.split(",")]
    for engine in engines:
        if not get_engine(engine).is_threaded:
            print(f"--engine must name threaded engines (rl_par, rlb_par), "
                  f"not {engine!r}", file=sys.stderr)
            return 2
    shape = tuple(int(t) for t in args.shape.split(","))
    A = grid_laplacian(shape)
    datas = spd_value_sweep(A, args.batch)

    plan = repro.plan(A)
    print(f"grid_laplacian{shape}: n = {A.n}, nnz_lower = {A.nnz_lower}, "
          f"{plan.nsup} supernodes, batch = {args.batch}, "
          f"cores = {os.cpu_count()}\n")

    best_speedup = 0.0
    all_identical = True
    print(f"{args.batch}-matrix same-pattern serving "
          f"(best of {args.repeats}):")
    for engine in engines:
        loop_engine = serial_twin(engine)
        # warm every pattern cache (scatter plan, DAG plans, block offsets)
        # outside the timed region — both protocols amortize the same plan
        plan.factorize(datas[0], engine=engine, workers=args.workers)
        plan.factorize(engine=loop_engine)

        def looped():
            return [plan.factorize(d, engine=loop_engine) for d in datas]

        def batched():
            return plan.factorize_batch(datas, engine=engine,
                                        workers=args.workers)

        t_loop, loop_results = best_of(looped, args.repeats)
        t_batch, batch = best_of(batched, args.repeats)

        identical = all(
            np.array_equal(p, q)
            for res, ref in zip(batch, loop_results)
            for p, q in zip(res.storage.panels, ref.storage.panels)
        )
        all_identical = all_identical and identical
        workers = batch[0].result.extra["workers"]
        speedup = t_loop / t_batch
        best_speedup = max(best_speedup, speedup)

        print(f"  looped {loop_engine:<4} refactorize    : "
              f"{t_loop * 1e3:9.2f} ms "
              f"({t_loop / args.batch * 1e3:7.2f} ms/matrix)")
        print(f"  factorize_batch {engine:<8}: {t_batch * 1e3:9.2f} ms "
              f"({t_batch / args.batch * 1e3:7.2f} ms/matrix, "
              f"workers={workers}, {speedup:5.2f}x, "
              f"bit-identical: {'yes' if identical else 'NO'})")
    print()

    if not all_identical:
        print("FAIL: batched factors are not bit-identical to the serial "
              "refactorize loop")
        return 1
    if best_speedup < args.min_speedup:
        print(f"FAIL: best batch speedup {best_speedup:.2f}x "
              f"< {args.min_speedup}x")
        return 1
    print(f"OK: best batch speedup {best_speedup:.2f}x >= "
          f"{args.min_speedup}x, all factors bit-identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
