"""Serve-time rank-k update/downdate benchmark: the crossover guard.

Default mode sweeps entry-column depth (elimination-tree path length) and
rank on a 3-D grid Laplacian and checks four things:

* a short-path rank-k ``Factor.update`` beats a warm same-pattern
  refactorize by ``--min-speedup`` (env ``BENCH_UPDATE_MIN_SPEEDUP``,
  else 1.5) in measured wall time;
* the *modeled* crossover flips inside the rank sweep — small ranks
  recommend ``update``, large ranks ``refactorize`` (the deterministic
  half of the guard: the cost model prices both roads, no runner noise);
* ``Factor.apply(policy="auto")`` actually takes the recommended road on
  BOTH sides of that flip (``result.extra["applied_policy"]``);
* the updated factor solves the modified system to oracle accuracy
  against a scratch factorization of ``A + W W^T``.

``--determinism-only`` skips timings and checks the bit-reproducibility
contract instead: base factors from the serial engines and all four
scheduling backends (threads / gpu / hybrid / process), updated and
downdated at ranks 1 and 4, must all be bit-identical within each
granularity family and across repeated runs — an update of bit-identical
factors is bit-identical, so serve-time updates inherit the runtime's
determinism contract.  A rotation sweep and a scratch Cholesky are
different floating-point programs, so *numerical* agreement with the
scratch factorization of the updated matrix is verified to oracle
tolerance (solve-vector agreement at ~1e-9), not bitwise.

Run:  PYTHONPATH=src python benchmarks/bench_update.py
      PYTHONPATH=src python benchmarks/bench_update.py \\
          --shape 20,20,6 --determinism-only     # CI determinism gate
"""

from __future__ import annotations

import os
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).parent))

# the sweep is level-1 python-orchestrated math and the refactorize
# baseline is the real BLAS DAG: pin the BLAS pool like every other bench
from _blas import pin_blas_threads

pin_blas_threads()

import argparse

import numpy as np

from harness import best_of, save_snapshot
from repro.api import plan as make_plan
from repro.sparse import grid_laplacian
from repro.update.vectors import structured_update

FAMILIES = ("rl", "rlb")
BACKENDS = ("threads", "gpu", "hybrid", "process")


def _identical(storage_a, storage_b):
    if len(storage_a.panels) != len(storage_b.panels):
        return False
    pairs = zip(storage_a.panels, storage_b.panels)
    return all(np.array_equal(p, q) for p, q in pairs)


def _make_w(plan, rank, *, depth=0.0, seed=0, scale=0.02):
    """Structurally valid rank-``rank`` modification with entry columns at
    ``depth`` (fraction of n; path length to the root varies with where
    the entry column sits in the elimination tree)."""
    n = plan.n
    j0 = min(n - 1, max(0, int(round(depth * (n - 1)))))
    roots = [min(n - 1, j0 + 3 * i) for i in range(rank)]
    return structured_update(plan.symb, plan.perm, roots, nent=4,
                             seed=seed, scale=scale)


def _scratch_factor(plan, factor, W, *, downdate=False):
    """Oracle: factorize ``A ± W W^T`` from scratch (fresh analysis when
    the modification grew the pattern)."""
    from repro.update.matrix import UpdatedMatrix

    B = UpdatedMatrix(factor.matrix, W, downdate=downdate).materialize()
    try:
        return plan.factorize(B, engine="rl")
    except ValueError:
        return make_plan(B).factorize(engine="rl")


def _backend_factor(plan, family, backend):
    kwargs = {"engine": family, "backend": backend}
    if backend in ("threads", "hybrid", "process"):
        kwargs["workers"] = 4
    else:
        kwargs["devices"] = 2
    return plan.factorize(**kwargs)


def check_determinism(plan, b):
    """Update/downdate bit-identity across engines, backends and repeated
    runs, plus oracle accuracy vs a scratch factorization."""
    failures = []
    for rank in (1, 4):
        W = _make_w(plan, rank, depth=0.0, seed=rank)
        for family in FAMILIES:
            base_ref = plan.factorize(engine=family)
            up_ref = base_ref.update(W)
            down_ref = up_ref.downdate(W)
            # oracle: the updated factor must solve A + W W^T like a
            # scratch factorization of it (numerical agreement)
            scratch = _scratch_factor(plan, base_ref, W)
            x_up = up_ref.solve(b)
            x_ref = scratch.solve(b)
            close = np.allclose(x_up, x_ref, rtol=1e-9, atol=1e-11)
            mark = "ok" if close else "MISMATCH"
            print(f"  rank={rank} {family:>4} update vs scratch solve: "
                  f"{mark}")
            if not close:
                failures.append((rank, family, "oracle"))
            for backend in BACKENDS:
                for run in (1, 2):
                    base = _backend_factor(plan, family, backend)
                    up = base.update(W)
                    down = up.downdate(W)
                    ok = (_identical(base.storage, base_ref.storage)
                          and _identical(up.storage, up_ref.storage)
                          and _identical(down.storage, down_ref.storage))
                    mark = "ok" if ok else "MISMATCH"
                    print(f"  rank={rank} {family:>4} backend={backend:<8}"
                          f" run {run} vs serial: {mark}")
                    if not ok:
                        failures.append((rank, family, backend, run))
    return failures


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--shape", default="24,24,8",
                    help="grid Laplacian shape, comma separated")
    ap.add_argument("--rank", type=int, default=2,
                    help="rank of the depth-sweep modification (default 2)")
    ap.add_argument("--repeats", type=int, default=5,
                    help="timing repeats (best-of)")
    ap.add_argument(
        "--min-speedup", type=float, default=None,
        help="fail when the short-path measured update speedup over a warm "
             "refactorize is below this (env default: "
             "BENCH_UPDATE_MIN_SPEEDUP, else 1.5)")
    ap.add_argument(
        "--determinism-only", action="store_true",
        help="skip timings; only verify bit-identity across "
             "engines/backends and the scratch-factorization oracle")
    args = ap.parse_args(argv)
    if args.min_speedup is None:
        args.min_speedup = float(
            os.environ.get("BENCH_UPDATE_MIN_SPEEDUP", "1.5"))

    shape = tuple(int(t) for t in args.shape.split(","))
    A = grid_laplacian(shape)
    plan = make_plan(A)
    n = plan.n
    rng = np.random.default_rng(7)
    b = rng.standard_normal(n)
    print(f"grid_laplacian{shape}: n = {n}, {plan.nsup} supernodes, "
          f"refactorize flops = {plan.symb.factor_flops():.3e}\n")

    if args.determinism_only:
        print("determinism contract (updated factors bit-identical across "
              "backends, oracle-accurate vs scratch):")
        failures = check_determinism(plan, b)
        if failures:
            print(f"\nFAIL: {len(failures)} broken run(s)")
            return 1
        print("\nOK: updates bit-identical across engines/backends, "
              "oracle-accurate vs scratch factorization")
        return 0

    factor = plan.factorize(engine="rl")
    ok = True

    # --- measured depth sweep: path length vs a warm refactorize --------
    print(f"depth sweep (rank {args.rank}, measured, best of "
          f"{args.repeats}):")
    t_refz, _ = best_of(lambda: plan.factorize(engine="rl"), args.repeats)
    depth_rows = []
    short_path_speedup = 0.0
    for depth in (0.95, 0.5, 0.0):
        W = _make_w(plan, args.rank, depth=depth, seed=3)
        cost = factor.update_cost(W)
        t_up, updated = best_of(lambda: factor.update(W), args.repeats)
        x = updated.solve(b)
        x_ref = _scratch_factor(plan, factor, W).solve(b)
        close = np.allclose(x, x_ref, rtol=1e-9, atol=1e-11)
        ok = ok and close
        speedup = t_refz / t_up
        short_path_speedup = max(short_path_speedup, speedup)
        depth_rows.append({
            "depth": depth,
            "path_cols": cost.path_cols,
            "update_seconds": t_up,
            "refactorize_seconds": t_refz,
            "speedup": speedup,
            "modeled_update_seconds": cost.update_seconds,
            "modeled_refactorize_seconds": cost.refactorize_seconds,
            "oracle_ok": bool(close),
        })
        print(f"  depth={depth:4.2f} path={cost.path_cols:5d} "
              f"update {t_up * 1e3:8.2f} ms vs refactorize "
              f"{t_refz * 1e3:8.2f} ms ({speedup:6.2f}x, "
              f"oracle {'ok' if close else 'MISMATCH'})")

    # --- modeled rank sweep: find the crossover flip --------------------
    print("\nrank sweep at depth 0 (modeled, deterministic):")
    rank_rows = []
    flip_rank = None
    last_reco = None
    for rank in (1, 2, 4, 8, 16, 32):
        W = _make_w(plan, rank, depth=0.0, seed=5)
        cost = factor.update_cost(W)
        if last_reco == "update" and cost.recommended == "refactorize":
            flip_rank = rank
        last_reco = cost.recommended
        rank_rows.append({
            "rank": rank,
            "path_cols": cost.path_cols,
            "modeled_update_seconds": cost.update_seconds,
            "modeled_refactorize_seconds": cost.refactorize_seconds,
            "recommended": cost.recommended,
        })
        print(f"  k={rank:<3d} path={cost.path_cols:5d} "
              f"update {cost.update_seconds * 1e3:8.3f} ms vs "
              f"refactorize {cost.refactorize_seconds * 1e3:8.3f} ms "
              f"-> {cost.recommended}")
    if flip_rank is None:
        print("FAIL: modeled crossover never flips update -> refactorize "
              "in the rank sweep")
        ok = False
    else:
        print(f"  crossover flips at k={flip_rank}")

    # --- policy=auto must take the recommended road on both sides -------
    auto_ok = True
    if flip_rank is not None:
        for rank, side in ((1, "update"), (flip_rank, "refactorize")):
            W = _make_w(plan, rank, depth=0.0, seed=5)
            applied = factor.apply(W, policy="auto")
            chosen = applied.result.extra["applied_policy"]
            good = chosen == side
            auto_ok = auto_ok and good
            print(f"  policy=auto at k={rank}: chose {chosen} "
                  f"(expected {side}) {'ok' if good else 'WRONG'}")
    ok = ok and auto_ok

    path = save_snapshot("update", {
        "shape": list(shape),
        "rank": args.rank,
        "repeats": args.repeats,
        "min_speedup": args.min_speedup,
        "short_path_speedup": short_path_speedup,
        "flip_rank": flip_rank,
        "depth_rows": depth_rows,
        "rank_rows": rank_rows,
    })
    if path:
        print(f"\nwrote snapshot {path}")
    if not ok:
        print("FAIL: oracle/crossover/auto-policy check broke (see above)")
        return 1
    if short_path_speedup < args.min_speedup:
        print(f"FAIL: short-path update speedup {short_path_speedup:.2f}x "
              f"< {args.min_speedup}x")
        return 1
    print(f"OK: short-path update beats refactorize "
          f"{short_path_speedup:.2f}x >= {args.min_speedup}x, crossover "
          f"flips at k={flip_rank}, policy=auto correct on both sides")
    return 0


if __name__ == "__main__":
    sys.exit(main())
