"""Closed-loop load benchmark of the multi-tenant serving gateway.

Drives :class:`repro.serving.Gateway` with the workload it was built for:
``--tenants`` concurrent tenants submit ``--requests`` factorize+solve
requests over ``--patterns`` distinct sparsity patterns whose popularity
follows a Zipf law (exponent 1.1) — a few hot patterns, a long cold tail,
the shape of real same-structure serving traffic.  The gateway keys every
request by its pattern fingerprint into the LRU cache of warm
``SymbolicPlan``/``ServingSession`` pairs, so hot patterns pay symbolic
analysis once and every later request skips straight to the numeric
kernels.

Three guards, all loud:

* every gateway-returned solution must be bit-identical to a direct
  ``plan → factorize → solve`` of the same matrix on the engine's serial
  twin (the determinism contract extends through the async front door);
* the closed-loop hit rate must reach ``--min-hit-rate`` (default 0.8) —
  Zipf popularity concentrated on a warm cache is the whole point;
* the warm (cache-hit) request latency must beat the cold
  analyze-every-request protocol by ``--min-hit-speedup`` (default: the
  ``BENCH_GATEWAY_MIN_HIT_SPEEDUP`` env var, else 2.0) — cold here means
  what serving looked like before the gateway: a fresh symbolic analysis
  in front of every numeric factorization.

Timings are best-of-``--repeats`` means to reject scheduler noise; BLAS
is pinned to one thread per call (task-level parallelism is what the
serving pool measures).  Results are persisted as ``BENCH_GATEWAY.json``
via :func:`harness.save_snapshot` (repo-root ``bench-snapshots/`` by
default) so successive changes leave a diffable perf trajectory.

Run:  PYTHONPATH=src python benchmarks/bench_gateway.py
      BENCH_GATEWAY_MIN_HIT_SPEEDUP=1.3 PYTHONPATH=src \\
          python benchmarks/bench_gateway.py --shape 14,14,6  # CI
"""

from __future__ import annotations

import os
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).parent))

# Task-level parallelism is the thing being measured: pin the BLAS pool to
# one thread per call (MA87-style) *before* NumPy/SciPy load the libraries.
from _blas import pin_blas_threads

pin_blas_threads()

import argparse
import asyncio
import time

import numpy as np

from harness import save_snapshot
import repro
from repro.numeric.registry import get_engine, serial_twin
from repro.serving import Gateway
from repro.sparse import grid_laplacian, spd_value_sweep
from repro.sparse.csc import SymmetricCSC
from repro.sparse.permute import random_permutation, symmetric_permute

ZIPF_EXPONENT = 1.1


def build_workload(shape, npatterns, nvalues, seed):
    """``(patterns, sweeps, picks_weights)`` for the closed loop: the base
    grid Laplacian plus ``npatterns - 1`` random symmetric permutations of
    it (distinct fingerprints, identical cost profile), each with a sweep
    of same-pattern SPD value sets."""
    rng = np.random.default_rng(seed)
    A = grid_laplacian(shape)
    patterns = [A] + [symmetric_permute(A, random_permutation(A.n, rng))
                      for _ in range(npatterns - 1)]
    sweeps = [spd_value_sweep(P, nvalues, seed=seed + m)
              for m, P in enumerate(patterns)]
    weights = 1.0 / np.arange(1, npatterns + 1) ** ZIPF_EXPONENT
    weights /= weights.sum()
    return patterns, sweeps, weights


def matrix_for(patterns, sweeps, m, k):
    P = patterns[m]
    v = sweeps[m][k % len(sweeps[m])]
    return SymmetricCSC(P.n, P.indptr, P.indices, v, check=False)


async def closed_loop(gw, patterns, sweeps, picks, b, ntenants):
    """All tenants drain their share of the Zipf request stream
    concurrently; returns ``[(request_index, pattern_index, value_index,
    solution), ...]`` across tenants."""

    async def tenant(t):
        out = []
        for i in range(t, len(picks), ntenants):
            m = int(picks[i])
            M = matrix_for(patterns, sweeps, m, i)
            x = await gw.submit(M, b, tenant=f"tenant{t}")
            out.append((i, m, i % len(sweeps[m]), x))
        return out

    chunks = await asyncio.gather(*[tenant(t) for t in range(ntenants)])
    return [item for chunk in chunks for item in chunk]


async def warm_probe(gw, patterns, sweeps, picks, b):
    """Mean per-request latency with every pattern already warm: the same
    Zipf stream, one request at a time (latency, not throughput)."""
    t_sum = 0.0
    for i, m in enumerate(picks):
        M = matrix_for(patterns, sweeps, int(m), i)
        t0 = time.perf_counter()
        await gw.submit(M, b)
        t_sum += time.perf_counter() - t0
    return t_sum / len(picks)


def cold_probe(patterns, sweeps, picks, b, engine):
    """Mean per-request latency of the pre-gateway protocol: a fresh
    symbolic analysis in front of every factorize+solve."""
    t_sum = 0.0
    for i, m in enumerate(picks):
        M = matrix_for(patterns, sweeps, int(m), i)
        t0 = time.perf_counter()
        plan = repro.plan(M)
        plan.factorize(engine=engine).solve(b)
        t_sum += time.perf_counter() - t0
    return t_sum / len(picks)


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--shape", default="16,16,6",
                    help="grid Laplacian shape, comma separated")
    ap.add_argument("--requests", type=int, default=40,
                    help="closed-loop requests (default: 40)")
    ap.add_argument("--tenants", type=int, default=4,
                    help="concurrent tenants (default: 4)")
    ap.add_argument("--patterns", type=int, default=4,
                    help="distinct sparsity patterns (default: 4)")
    ap.add_argument("--probe", type=int, default=8,
                    help="requests per warm/cold latency probe")
    ap.add_argument("--engine", default="rlb_par",
                    help="gateway serving engine (default: rlb_par)")
    ap.add_argument("--workers", type=int, default=None,
                    help="serving-pool worker threads")
    ap.add_argument("--repeats", type=int, default=3,
                    help="latency-probe repeats (best-of mean)")
    ap.add_argument(
        "--min-hit-speedup",
        type=float,
        default=float(os.environ.get("BENCH_GATEWAY_MIN_HIT_SPEEDUP",
                                     "2.0")),
        help="fail when warm (cache-hit) latency does not beat the cold "
             "analyze-every-request path by this factor (env default: "
             "BENCH_GATEWAY_MIN_HIT_SPEEDUP)",
    )
    ap.add_argument("--min-hit-rate", type=float, default=0.8,
                    help="fail when the closed-loop hit rate is below "
                         "this (default: 0.8)")
    args = ap.parse_args(argv)

    if not get_engine(args.engine).is_threaded:
        print(f"--engine must name a threaded engine (rl_par, rlb_par), "
              f"not {args.engine!r}", file=sys.stderr)
        return 2
    shape = tuple(int(t) for t in args.shape.split(","))
    patterns, sweeps, weights = build_workload(
        shape, args.patterns, nvalues=8, seed=0)
    rng = np.random.default_rng(1)
    picks = rng.choice(args.patterns, size=args.requests, p=weights)
    probe_picks = rng.choice(args.patterns, size=args.probe, p=weights)
    b = rng.standard_normal(patterns[0].n)
    twin = serial_twin(args.engine)

    A = patterns[0]
    print(f"grid_laplacian{shape}: n = {A.n}, {args.patterns} patterns "
          f"(Zipf {ZIPF_EXPONENT}), {args.tenants} tenants, "
          f"{args.requests} requests, cores = {os.cpu_count()}\n")

    async def run():
        async with Gateway(capacity=args.patterns,
                           workers=args.workers,
                           engine=args.engine) as gw:
            results = await closed_loop(gw, patterns, sweeps, picks, b,
                                        args.tenants)
            warm = min([await warm_probe(gw, patterns, sweeps,
                                         probe_picks, b)
                        for _ in range(args.repeats)])
            return results, warm, gw.stats()

    t0 = time.perf_counter()
    results, warm_avg, stats = asyncio.run(run())
    wall = time.perf_counter() - t0
    cold_avg = min(cold_probe(patterns, sweeps, probe_picks, b, twin)
                   for _ in range(args.repeats))

    # determinism through the async front door: every solution must match
    # a direct plan→factorize→solve on the serial twin, bit for bit
    plans = [repro.plan(P) for P in patterns]
    identical = all(
        np.array_equal(x, plans[m].factorize(sweeps[m][k],
                                             engine=twin).solve(b))
        for (_, m, k, x) in results
    )
    hit_speedup = cold_avg / warm_avg

    print(f"closed loop        : {stats.requests} requests in "
          f"{wall * 1e3:9.2f} ms "
          f"({wall / max(stats.requests, 1) * 1e3:7.2f} ms/request)")
    print(f"hit rate           : {stats.hit_rate:9.2f} "
          f"({stats.hits} hits / {stats.misses} misses, "
          f"{stats.cached_plans} warm plans)")
    print(f"cold (analyze/req) : {cold_avg * 1e3:9.2f} ms/request "
          f"(engine {twin})")
    print(f"warm (cache hit)   : {warm_avg * 1e3:9.2f} ms/request "
          f"(engine {args.engine})")
    print(f"hit speedup        : {hit_speedup:9.2f}x "
          f"(bit-identical: {'yes' if identical else 'NO'})")
    print()

    path = save_snapshot("gateway", {
        "shape": list(shape),
        "n": A.n,
        "engine": args.engine,
        "serial_twin": twin,
        "requests": stats.requests,
        "tenants": args.tenants,
        "patterns": args.patterns,
        "zipf_exponent": ZIPF_EXPONENT,
        "hits": stats.hits,
        "misses": stats.misses,
        "hit_rate": round(stats.hit_rate, 4),
        "evictions": stats.evictions,
        "cold_ms_per_request": round(cold_avg * 1e3, 3),
        "warm_ms_per_request": round(warm_avg * 1e3, 3),
        "hit_speedup": round(hit_speedup, 3),
        "bit_identical": identical,
        "min_hit_speedup": args.min_hit_speedup,
        "min_hit_rate": args.min_hit_rate,
    })
    if path:
        print(f"snapshot: {path}")

    if not identical:
        print("FAIL: gateway solutions are not bit-identical to the "
              "direct plan->factorize->solve path")
        return 1
    if stats.hit_rate < args.min_hit_rate:
        print(f"FAIL: hit rate {stats.hit_rate:.2f} "
              f"< {args.min_hit_rate}")
        return 1
    if hit_speedup < args.min_hit_speedup:
        print(f"FAIL: warm-vs-cold hit speedup {hit_speedup:.2f}x "
              f"< {args.min_hit_speedup}x")
        return 1
    print(f"OK: hit rate {stats.hit_rate:.2f} >= {args.min_hit_rate}, "
          f"hit speedup {hit_speedup:.2f}x >= {args.min_hit_speedup}x, "
          f"all solutions bit-identical")
    return 0


if __name__ == "__main__":
    sys.exit(main())
