"""Threshold-sweep benchmark of the heterogeneous CPU+GPU backend.

Sweeps the offload threshold of :func:`repro.numeric.gpu_dag.
factorize_hybrid` across quantiles of the pattern's dilated panel sizes,
plus the two degenerate endpoints — ``inf`` (all supernodes on the measured
CPU worker lanes) and ``0`` (all on the modeled GPU stream lanes) — and
reports the combined time ``max(measured_cpu / workers, modeled_gpu)`` at
each cutoff, verifying on every run that the hybrid factors are
*bit-identical* to the serial engines (the ordered-committer contract).

The offload crossover is the point of the sweep: moving the cutoff down
drains work off the worker lanes (measured term falls) and onto the stream
lanes (modeled term rises), so the combined time is minimized at an
interior threshold — the hybrid beats pure-CPU *and* pure-GPU-modeled.
Exits non-zero when NO swept granularity shows an interior combined time
beating both endpoints within ``--margin`` (default: the
``BENCH_HYBRID_MARGIN`` env var, else 1.0 — strict; CI relaxes it for
noisy shared runners without editing the workflow).  Coarse granularity
is the robust demonstration — its big offloaded BLAS calls release the
GIL, so the measured lanes stay clean; fine granularity's many tiny tasks
make the measured term scheduling-noise-bound on small containers, which
is why the gate is at-least-one, with both reported.

``--determinism-only`` skips the sweep and only checks the
bit-reproducibility contract (both granularities, repeated runs at
``workers=4, devices=2`` plus ``workers=1``, against serial, including the
modeled clock's run-to-run equality) — the mode CI's determinism job runs
on every PR.

Run:  PYTHONPATH=src python benchmarks/bench_hybrid.py
      PYTHONPATH=src python benchmarks/bench_hybrid.py \\
          --shape 20,20,6 --determinism-only         # CI determinism gate
"""

from __future__ import annotations

import os
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).parent))

# The CPU side of the hybrid split measures real task-level parallelism:
# pin the BLAS pool to one thread per call *before* NumPy loads it.
from _blas import pin_blas_threads

pin_blas_threads()

import argparse

import numpy as np

from harness import best_of, save_snapshot
from repro.gpu.costmodel import MachineModel
from repro.numeric import (
    factorize_hybrid,
    factorize_rl_cpu,
    factorize_rlb_cpu,
    scaled_panel_entries_array,
)
from repro.sparse import grid_laplacian
from repro.symbolic import analyze

BIG = 10 ** 15

SERIAL = {"coarse": factorize_rl_cpu, "fine": factorize_rlb_cpu}


def _identical(res, ref):
    if len(res.storage.panels) != len(ref.storage.panels):
        return False
    pairs = zip(res.storage.panels, ref.storage.panels)
    return all(np.array_equal(p, q) for p, q in pairs)


def _mixed_threshold(symb):
    """The median dilated panel size: splits the pattern across substrates."""
    entries = scaled_panel_entries_array(
        MachineModel(), np.diff(symb.rowptr) * np.diff(symb.snptr))
    return float(np.median(entries))


def check_determinism(symb, M, workers=4):
    """The CI determinism gate: repeated hybrid runs at ``workers=N,
    devices=2`` and a ``workers=1`` run must be bit-identical to the serial
    engine of the same granularity, and the repeated runs must agree on the
    modeled GPU clock."""
    thr = _mixed_threshold(symb)
    failures = []
    for granularity in ("coarse", "fine"):
        ref = SERIAL[granularity](symb, M)
        runs = {
            f"workers={workers} run 1": factorize_hybrid(
                symb, M, granularity=granularity, workers=workers,
                devices=2, threshold=thr, device_memory=BIG),
            f"workers={workers} run 2": factorize_hybrid(
                symb, M, granularity=granularity, workers=workers,
                devices=2, threshold=thr, device_memory=BIG),
            "workers=1": factorize_hybrid(
                symb, M, granularity=granularity, workers=1,
                devices=2, threshold=thr, device_memory=BIG),
        }
        for label, res in runs.items():
            ok = _identical(res, ref)
            mark = "ok" if ok else "MISMATCH"
            print(f"  {granularity:>6} {label:<18} vs serial: {mark}")
            if not ok:
                failures.append((granularity, label))
        g1 = runs[f"workers={workers} run 1"].modeled_gpu_seconds
        g2 = runs[f"workers={workers} run 2"].modeled_gpu_seconds
        ok = g1 == g2
        print(f"  {granularity:>6} modeled GPU clock repeat:  "
              f"{'ok' if ok else 'MISMATCH'} ({g1:.6e} vs {g2:.6e})")
        if not ok:
            failures.append((granularity, "modeled clock"))
    return failures


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--shape", default="20,20,6",
                    help="grid Laplacian shape, comma separated")
    ap.add_argument("--workers", type=int, default=4,
                    help="CPU worker lanes (default 4)")
    ap.add_argument("--devices", type=int, default=1,
                    help="modeled GPU stream lanes (default 1)")
    ap.add_argument("--repeats", type=int, default=3,
                    help="timing repeats per threshold (best-of)")
    ap.add_argument("--thresholds", type=int, default=5,
                    help="interior quantile cutoffs to sweep (default 5)")
    ap.add_argument(
        "--margin", type=float,
        default=float(os.environ.get("BENCH_HYBRID_MARGIN", "1.0")),
        help="pass when best interior combined <= margin x best endpoint "
             "(env default: BENCH_HYBRID_MARGIN; 1.0 = must strictly win)")
    ap.add_argument("--determinism-only", action="store_true",
                    help="skip the sweep; only verify the "
                         "bit-reproducibility contract")
    args = ap.parse_args(argv)

    shape = tuple(int(t) for t in args.shape.split(","))
    system = analyze(grid_laplacian(shape))
    symb, M = system.symb, system.matrix
    print(f"grid_laplacian{shape}: n = {symb.n}, {symb.nsup} supernodes, "
          f"workers = {args.workers}, devices = {args.devices}\n")

    if args.determinism_only:
        print("determinism contract (bit-identical factors):")
        failures = check_determinism(symb, M)
        if failures:
            print(f"\nFAIL: {len(failures)} non-deterministic run(s)")
            return 1
        print("\nOK: all factors bit-identical to serial, modeled clock "
              "repeatable")
        return 0

    entries = scaled_panel_entries_array(
        MachineModel(), np.diff(symb.rowptr) * np.diff(symb.snptr))
    # the crossover lives in the upper tail (offload only the largest
    # panels, where the modeled streams pay off): geometric tail quantiles
    # halve the offloaded fraction at each step — 50 %, 25 %, 12.5 %, ...
    qs = [1.0 - 0.5 ** k for k in range(1, args.thresholds + 1)]
    interior = sorted({float(np.quantile(entries, q)) for q in qs})
    sweep = [float("inf")] + interior[::-1] + [0.0]

    ref = {g: SERIAL[g](symb, M) for g in ("coarse", "fine")}
    status = 0
    crossovers = {}
    snapshot = {"shape": list(shape), "workers": args.workers,
                "devices": args.devices, "repeats": args.repeats,
                "margin": args.margin, "sweep": {}}
    for granularity in ("coarse", "fine"):
        print(f"{granularity} granularity "
              f"(threshold, supernodes offloaded, combined):")
        rows = []
        for thr in sweep:
            def run():
                return factorize_hybrid(
                    symb, M, granularity=granularity, workers=args.workers,
                    devices=args.devices, threshold=thr, device_memory=BIG)
            combined, res = None, None
            for _ in range(args.repeats):
                _, r = best_of(run, 1)
                if combined is None or r.combined_seconds < combined:
                    combined, res = r.combined_seconds, r
            bitwise = _identical(res, ref[granularity])
            label = ("inf (all-CPU)" if thr == float("inf")
                     else "0 (all-GPU)" if thr == 0 else f"{thr:12.1f}")
            print(f"  thr={label:>14} gpu={res.snodes_on_gpu:>4}/{symb.nsup:<4} "
                  f"cpu {res.measured_cpu_seconds * 1e3:8.2f} ms  "
                  f"gpu {res.modeled_gpu_seconds * 1e3:8.2f} ms  "
                  f"combined {combined * 1e3:8.2f} ms  "
                  f"bit-identical: {'yes' if bitwise else 'NO'}")
            if not bitwise:
                status = 1
            rows.append({"threshold": thr if thr != float("inf") else "inf",
                         "snodes_on_gpu": res.snodes_on_gpu,
                         "measured_cpu_seconds": res.measured_cpu_seconds,
                         "modeled_gpu_seconds": res.modeled_gpu_seconds,
                         "combined_seconds": combined})
        cpu_end = rows[0]["combined_seconds"]
        gpu_end = rows[-1]["combined_seconds"]
        best_interior = min(r["combined_seconds"] for r in rows[1:-1])
        crossover = best_interior <= args.margin * min(cpu_end, gpu_end)
        crossovers[granularity] = crossover
        print(f"  endpoints: all-CPU {cpu_end * 1e3:.2f} ms, all-GPU "
              f"{gpu_end * 1e3:.2f} ms; best interior "
              f"{best_interior * 1e3:.2f} ms -> offload crossover "
              f"{'holds' if crossover else 'not visible'} "
              f"(margin {args.margin:.2f})\n")
        snapshot["sweep"][granularity] = {
            "rows": rows, "all_cpu_seconds": cpu_end,
            "all_gpu_seconds": gpu_end,
            "best_interior_seconds": best_interior,
            "crossover": crossover,
        }
    path = save_snapshot("hybrid", snapshot)
    if path:
        print(f"wrote snapshot {path}")
    if status:
        print("FAIL: hybrid factors not bit-identical (see MISMATCH above)")
        return status
    if not any(crossovers.values()):
        print("FAIL: no granularity shows an interior threshold beating "
              "both endpoints")
        return 1
    held = ", ".join(g for g, ok in crossovers.items() if ok)
    print(f"OK: factors bit-identical at every threshold; offload "
          f"crossover holds ({held})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
