"""Shared benchmark harness: runs suite matrices through the four methods.

Used by every ``bench_*`` module and runnable directly::

    python benchmarks/harness.py [matrix ...]

For each matrix the harness performs the paper's protocol:

* symbolic pipeline (ND ordering, merge at 25 %, partition refinement);
* CPU baseline = best over MKL thread counts {8,...,128} of *both* CPU
  methods (RL and RLB) — speedups are relative to this "best" time (§IV-B);
* GPU-accelerated RL and RLB-v2 with the default thresholds and simulated
  device memory; out-of-memory failures are recorded, not raised.

Results are cached per process so the table/figure benches can share runs.
"""

from __future__ import annotations

import json
import os
import pathlib
import sys
import time
from dataclasses import dataclass, field
from typing import Optional

from repro.gpu import DeviceOutOfMemory, MachineModel
from repro.numeric import (
    DEFAULT_DEVICE_MEMORY,
    DEFAULT_RL_THRESHOLD,
    DEFAULT_RLB_THRESHOLD,
    factorize_rl_cpu,
    factorize_rl_gpu,
    factorize_rlb_cpu,
    factorize_rlb_gpu,
)
from repro.sparse import SUITE, get_entry
from repro.symbolic import analyze

__all__ = ["MatrixRun", "run_matrix", "run_suite", "best_of",
           "save_snapshot", "SUITE_NAMES"]

SUITE_NAMES = [e.name for e in SUITE]


def save_snapshot(name, payload, *, directory=None):
    """Persist a bench's results as ``BENCH_<NAME>.json``.

    ``directory`` defaults to the ``BENCH_SNAPSHOT_DIR`` environment
    variable, and — when that is unset too — to ``bench-snapshots/`` at
    the repo root, so every bench run (local or CI) leaves a
    machine-readable perf trajectory the next change can diff against.
    CI's perf-smoke job uploads the directory as a build artifact next to
    the pass/fail log.  Set ``BENCH_SNAPSHOT_DIR=`` (empty) to opt out of
    writing any file; the call then returns ``None``.
    """
    if directory is None:
        directory = os.environ.get("BENCH_SNAPSHOT_DIR")
        if directory is None:
            directory = pathlib.Path(__file__).resolve().parent.parent \
                / "bench-snapshots"
    if not directory:
        return None
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"BENCH_{name.upper()}.json"
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def best_of(fn, repeats):
    """``(best_seconds, last_result)`` of ``fn()`` over ``repeats`` runs —
    the wall-clock benches' noise-rejecting timing protocol."""
    best = float("inf")
    out = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


@dataclass
class MatrixRun:
    """All measurements for one suite matrix.

    ``cpu_best_seconds`` is the paper's baseline: min over thread counts and
    over {RL, RLB}.  GPU results are ``None`` when the method failed with
    :class:`DeviceOutOfMemory` (the failure is recorded in ``failures``).
    """

    name: str
    n: int
    nsup: int
    factor_flops: float
    rl_cpu: object
    rlb_cpu: object
    rl_gpu: Optional[object]
    rlb_gpu: Optional[object]
    cpu_best_seconds: float
    analyze_seconds: float
    failures: dict = field(default_factory=dict)

    def speedup(self, result):
        """Speedup of a GPU result vs the best-CPU baseline."""
        if result is None:
            return None
        return self.cpu_best_seconds / result.modeled_seconds

    def times_for_profile(self):
        """Factorization times of the four profile methods (Figure 3)."""
        return {
            "RL_C": self.rl_cpu.modeled_seconds,
            "RLB_C": self.rlb_cpu.modeled_seconds,
            "RL_G": None if self.rl_gpu is None
                    else self.rl_gpu.modeled_seconds,
            "RLB_G": None if self.rlb_gpu is None
                     else self.rlb_gpu.modeled_seconds,
        }


_cache: dict = {}


def run_matrix(name, *, machine=None,
               rl_threshold=DEFAULT_RL_THRESHOLD,
               rlb_threshold=DEFAULT_RLB_THRESHOLD,
               device_memory=DEFAULT_DEVICE_MEMORY,
               use_cache=True, system=None):
    """Run one suite matrix through RL/RLB CPU + GPU; returns a
    :class:`MatrixRun`.  Pass a prebuilt ``system`` (AnalyzedSystem) to
    skip the symbolic phase."""
    key = (name, rl_threshold, rlb_threshold, device_memory,
           id(machine) if machine is not None else None)
    if use_cache and key in _cache:
        return _cache[key]
    machine = machine or MachineModel()
    entry = get_entry(name)
    t0 = time.perf_counter()
    if system is None:
        system = analyze(entry.builder())
    analyze_seconds = time.perf_counter() - t0
    A = system.matrix
    symb, B = system.symb, system.matrix
    rl_cpu = factorize_rl_cpu(symb, B, machine=machine)
    rlb_cpu = factorize_rlb_cpu(symb, B, machine=machine)
    failures = {}
    try:
        rl_gpu = factorize_rl_gpu(
            symb, B, machine=machine, threshold=rl_threshold,
            device_memory=device_memory,
        )
    except DeviceOutOfMemory as exc:
        rl_gpu, failures["rl_gpu"] = None, str(exc)
    try:
        rlb_gpu = factorize_rlb_gpu(
            symb, B, version=2, machine=machine, threshold=rlb_threshold,
            device_memory=device_memory,
        )
    except DeviceOutOfMemory as exc:
        rlb_gpu, failures["rlb_gpu"] = None, str(exc)
    run = MatrixRun(
        name=name, n=A.n, nsup=symb.nsup,
        factor_flops=symb.factor_flops(),
        rl_cpu=rl_cpu, rlb_cpu=rlb_cpu, rl_gpu=rl_gpu, rlb_gpu=rlb_gpu,
        cpu_best_seconds=min(rl_cpu.modeled_seconds,
                             rlb_cpu.modeled_seconds),
        analyze_seconds=analyze_seconds,
        failures=failures,
    )
    if use_cache:
        _cache[key] = run
    return run


def run_suite(names=None, **kwargs):
    """Run (a subset of) the suite; returns ``{name: MatrixRun}``."""
    out = {}
    for name in (names or SUITE_NAMES):
        out[name] = run_matrix(name, **kwargs)
    return out


def main(argv):
    names = argv[1:] or SUITE_NAMES
    print(f"{'matrix':<18} {'n':>6} {'nsup':>5} {'cpuBest':>9} "
          f"{'RLG':>9} {'spd':>5} {'RLBG':>9} {'spd':>5} {'gpu/tot':>9}")
    for name in names:
        r = run_matrix(name)
        rlg = r.rl_gpu.modeled_seconds if r.rl_gpu else float("nan")
        rlbg = r.rlb_gpu.modeled_seconds if r.rlb_gpu else float("nan")
        s1 = r.speedup(r.rl_gpu)
        s2 = r.speedup(r.rlb_gpu)
        gs = (r.rl_gpu.snodes_on_gpu if r.rl_gpu else 0)
        print(f"{name:<18} {r.n:>6} {r.nsup:>5} {r.cpu_best_seconds:>9.4f} "
              f"{rlg:>9.4f} {s1 if s1 else float('nan'):>5.2f} "
              f"{rlbg:>9.4f} {s2 if s2 else float('nan'):>5.2f} "
              f"{gs:>4}/{r.nsup:<4}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
