"""Extension: multi-GPU RL scaling (the paper's node has four A100s).

Two regimes, both honest consequences of the paper's design:

* at the **default threshold** only the top-of-tree separators offload, and
  they form a dependency chain — extra devices buy ~nothing;
* at **threshold = 0** the elimination tree's independent branches all
  offload, so 2-4 devices show real (sublinear, assembly-serialized) gains.

The bench reports both sweeps; the takeaway (multi-GPU requires re-tuning
the offload threshold downward, and host assembly becomes the bottleneck)
is the kind of result the paper's future-work section would target.
"""

from __future__ import annotations

from conftest import suite_names, write_result
from repro.analysis import format_table
from repro.numeric import DEFAULT_RL_THRESHOLD, factorize_rl_multigpu

BIG_MEM = 10 ** 15
DEVICES = (1, 2, 4)


def sweep(names):
    from conftest import get_system

    rows = []
    gains = {0: [], DEFAULT_RL_THRESHOLD: []}
    for name in names:
        sy = get_system(name)
        cells = [name]
        for thr in (DEFAULT_RL_THRESHOLD, 0):
            times = [
                factorize_rl_multigpu(
                    sy.symb, sy.matrix, num_devices=k, threshold=thr,
                    device_memory=BIG_MEM).modeled_seconds
                for k in DEVICES
            ]
            gains[thr].append(times[0] / times[-1])
            cells.append(f"{times[0]:.4f}")
            cells.extend(f"{times[0] / t:.2f}" for t in times[1:])
        rows.append(tuple(cells))
    text = format_table(
        ["Matrix",
         "t@1 (default thr)", "x2 dev", "x4 dev",
         "t@1 (thr=0)", "x2 dev", "x4 dev"],
        rows, title="Extension: multi-GPU RL scaling")
    return text, gains


def test_multigpu_scaling(benchmark):
    names = [n for n in suite_names() if n != "nlpkkt120"][-5:]
    text, gains = benchmark.pedantic(lambda: sweep(names), rounds=1,
                                     iterations=1)
    write_result("multigpu_scaling.txt", text)
    # default threshold: the offloaded separators are a chain — no gain
    assert all(g <= 1.05 for g in gains[DEFAULT_RL_THRESHOLD])
    # threshold 0: tree parallelism is real but sublinear
    assert all(1.0 - 1e-9 <= g <= 4.0 for g in gains[0])
    assert max(gains[0]) > 1.2
