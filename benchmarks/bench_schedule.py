"""Ablation: task granularity — the paper's coarse-grain argument, on a DAG.

The paper claims RL "has the advantage of easier parallelization of one
coarse grain task" while RLB splits work into many small calls.  Building
both task DAGs (see :mod:`repro.numeric.schedule`) and list-scheduling them
onto p workers with a realistic per-task dispatch overhead quantifies the
trade-off: the fine DAG owns more inherent parallelism (work / critical
path) but loses at practical worker counts once dispatch costs land.
"""

from __future__ import annotations

from conftest import suite_names, write_result
from repro.analysis import format_table
from repro.numeric import (
    build_coarse_graph,
    build_fine_graph,
    critical_path,
    list_schedule,
)

WORKERS = (1, 4, 16, 64)
DISPATCH_S = 5e-6  # per-task scheduler dispatch (MA87-style runtimes)


def sweep(names):
    from conftest import get_system

    rows = []
    stats = []
    for name in names:
        symb = get_system(name).symb
        gc = build_coarse_graph(symb)
        gf = build_fine_graph(symb)
        pc = gc.total_work() / critical_path(gc)[0]
        pf = gf.total_work() / critical_path(gf)[0]
        mk = {}
        for p in WORKERS:
            mk[("c", p)] = list_schedule(
                gc, p, dispatch_overhead=DISPATCH_S).makespan
            mk[("f", p)] = list_schedule(
                gf, p, dispatch_overhead=DISPATCH_S).makespan
        rows.append((
            name, str(gc.ntasks), str(gf.ntasks),
            f"{pc:.1f}", f"{pf:.1f}",
            *(f"{mk[('f', p)] / mk[('c', p)]:.2f}" for p in WORKERS),
        ))
        stats.append((pc, pf, mk))
    text = format_table(
        ["Matrix", "coarse tasks", "fine tasks", "par(C)", "par(F)",
         *(f"fine/coarse @p={p}" for p in WORKERS)],
        rows,
        title="Ablation: task granularity (makespan ratio fine vs coarse, "
              f"dispatch {DISPATCH_S * 1e6:.0f} us)")
    return text, stats


def test_granularity(benchmark):
    names = [n for n in suite_names() if n != "nlpkkt120"][:6]
    text, stats = benchmark.pedantic(lambda: sweep(names), rounds=1,
                                     iterations=1)
    write_result("ablation_granularity.txt", text)
    for pc, pf, mk in stats:
        # the fine DAG always exposes more inherent parallelism ...
        assert pf > pc
        # ... but with dispatch overhead it never beats coarse serially
        assert mk[("f", 1)] >= mk[("c", 1)]
    # and at a practical worker count coarse wins on a majority of matrices
    coarse_wins = sum(1 for _, _, mk in stats
                      if mk[("c", 16)] <= mk[("f", 16)])
    assert coarse_wins >= len(stats) // 2 + 1
