"""Modeled-time guard for the DAG-scheduled GPU engines.

Compares the hand-rolled offload schedules (``rl_gpu`` / ``rlb_gpu_v2`` /
``rl_multigpu``) against the task-DAG runtime on the GPU stream backend
(``rl_gpu_dag`` / ``rlb_gpu_dag``, :mod:`repro.numeric.gpu_dag`) on a 3-D
grid Laplacian, verifying on every run that the DAG factors are
*bit-identical* to the hand-rolled (and serial) engines.

Exits non-zero when

* the ``devices=1`` DAG modeled time deviates from the hand-rolled
  schedule by more than ``--tolerance`` (default: ``BENCH_GPU_DAG_TOL``
  env var, else 0.05 — the acceptance bound; the deterministic priority
  order reproduces the schedule exactly, so any drift is a regression), or
* the ``devices=4`` modeled speedup falls below ``--min-speedup``
  (default: ``BENCH_GPU_DAG_MIN_SPEEDUP`` env var, else 1.5 — the
  multi-GPU scaling the backend inherits from the bespoke
  ``rl_multigpu`` scheduler it subsumes).

``--determinism-only`` skips the report and only checks bit-identity
(each granularity at ``devices=1,2,4`` plus OOM-accounting parity) — the
mode CI's determinism job runs on every PR.

Run:  PYTHONPATH=src python benchmarks/bench_gpu_dag.py
      PYTHONPATH=src python benchmarks/bench_gpu_dag.py \\
          --shape 20,20,6 --determinism-only         # CI determinism gate
"""

from __future__ import annotations

import argparse
import os
import sys

import numpy as np

from harness import save_snapshot
from repro.gpu import DeviceOutOfMemory
from repro.numeric import (
    factorize_gpu_dag,
    factorize_rl_cpu,
    factorize_rl_gpu,
    factorize_rl_multigpu,
    factorize_rlb_cpu,
    factorize_rlb_gpu,
)
from repro.sparse import grid_laplacian
from repro.symbolic import analyze

BIG = 10 ** 15

HAND_ROLLED = {
    "coarse": lambda s, m: factorize_rl_gpu(s, m, threshold=0,
                                            device_memory=BIG),
    "fine": lambda s, m: factorize_rlb_gpu(s, m, version=2, threshold=0,
                                           device_memory=BIG),
}
SERIAL = {"coarse": factorize_rl_cpu, "fine": factorize_rlb_cpu}


def _identical(res, ref):
    if len(res.storage.panels) != len(ref.storage.panels):
        return False
    pairs = zip(res.storage.panels, ref.storage.panels)
    return all(np.array_equal(p, q) for p, q in pairs)


def check_determinism(symb, M):
    """Bit-identity of the DAG engines against the hand-rolled twins and
    the serial engines, across a device sweep; plus OOM parity."""
    failures = []
    for granularity in ("coarse", "fine"):
        hand = HAND_ROLLED[granularity](symb, M)
        serial = SERIAL[granularity](symb, M)
        for devices in (1, 2, 4):
            res = factorize_gpu_dag(symb, M, granularity=granularity,
                                    threshold=0, device_memory=BIG,
                                    devices=devices)
            for label, ref in (("hand-rolled", hand), ("serial", serial)):
                ok = _identical(res, ref)
                mark = "ok" if ok else "MISMATCH"
                print(f"  {granularity:>6} devices={devices} vs "
                      f"{label:<11}: {mark}")
                if not ok:
                    failures.append((granularity, devices, label))
    # OOM accounting parity at a tiny device
    for granularity, hand_fn in (
        ("coarse", lambda: factorize_rl_gpu(symb, M, threshold=0,
                                            device_memory=2048)),
        ("fine", lambda: factorize_rlb_gpu(symb, M, version=2, threshold=0,
                                           device_memory=2048)),
    ):
        try:
            hand_fn()
            ref_oom = None
        except DeviceOutOfMemory as exc:
            ref_oom = (exc.requested, exc.free)
        try:
            factorize_gpu_dag(symb, M, granularity=granularity, threshold=0,
                              device_memory=2048)
            dag_oom = None
        except DeviceOutOfMemory as exc:
            dag_oom = (exc.requested, exc.free)
        ok = ref_oom == dag_oom
        print(f"  {granularity:>6} OOM accounting parity: "
              f"{'ok' if ok else 'MISMATCH'} ({ref_oom} vs {dag_oom})")
        if not ok:
            failures.append((granularity, "oom", "parity"))
    return failures


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--shape", default="20,20,6",
                    help="grid shape nx,ny,nz (default 20,20,6)")
    ap.add_argument("--devices", default="1,4",
                    help="device counts to report (default 1,4)")
    ap.add_argument(
        "--tolerance", type=float,
        default=float(os.environ.get("BENCH_GPU_DAG_TOL", "0.05")),
        help="max relative deviation of the devices=1 DAG modeled time "
             "from the hand-rolled schedule (default 0.05)")
    ap.add_argument(
        "--min-speedup", type=float,
        default=float(os.environ.get("BENCH_GPU_DAG_MIN_SPEEDUP", "1.5")),
        help="min modeled speedup of devices=4 over devices=1 (default 1.5)")
    ap.add_argument("--determinism-only", action="store_true",
                    help="only check bit-identity and OOM parity")
    args = ap.parse_args(argv)

    shape = tuple(int(x) for x in args.shape.split(","))
    system = analyze(grid_laplacian(shape))
    symb, M = system.symb, system.matrix
    print(f"grid {shape}: n={symb.n}, {symb.nsup} supernodes")

    if args.determinism_only:
        print("determinism contract (bit-identical factors, OOM parity):")
        failures = check_determinism(symb, M)
        if failures:
            print(f"FAILED: {len(failures)} mismatches")
            return 1
        print("all bit-identical")
        return 0

    failures = check_determinism(symb, M)
    devices = [int(x) for x in args.devices.split(",")]
    status = 0
    snapshot = {"shape": list(shape), "tolerance": args.tolerance,
                "min_speedup": args.min_speedup, "modeled": {}}
    for granularity in ("coarse", "fine"):
        hand = HAND_ROLLED[granularity](symb, M)
        times = {}
        for k in devices:
            res = factorize_gpu_dag(symb, M, granularity=granularity,
                                    threshold=0, device_memory=BIG,
                                    devices=k)
            times[k] = res.modeled_seconds
            print(f"  {granularity:>6} devices={k}: "
                  f"{res.modeled_seconds * 1e3:8.3f} ms modeled "
                  f"(hand-rolled {hand.modeled_seconds * 1e3:8.3f} ms)")
        dev1 = times.get(1)
        if dev1 is not None:
            drift = abs(dev1 - hand.modeled_seconds) / hand.modeled_seconds
            print(f"  {granularity:>6} devices=1 drift vs hand-rolled: "
                  f"{100 * drift:.3f}% (tolerance {100 * args.tolerance:.0f}%)")
            if drift > args.tolerance:
                print(f"FAILED: {granularity} devices=1 modeled time "
                      f"drifted {100 * drift:.2f}%")
                status = 1
        if dev1 is not None and 4 in times:
            speedup = dev1 / times[4]
            print(f"  {granularity:>6} devices=4 speedup: {speedup:.2f}x "
                  f"(min {args.min_speedup:.2f}x)")
            if speedup < args.min_speedup:
                print(f"FAILED: {granularity} devices=4 speedup "
                      f"{speedup:.2f}x below {args.min_speedup:.2f}x")
                status = 1
        snapshot["modeled"][granularity] = {
            "hand_rolled_seconds": hand.modeled_seconds,
            "dag_seconds_by_devices": {str(k): t for k, t in times.items()},
        }
    mg4 = factorize_rl_multigpu(symb, M, num_devices=4, threshold=0,
                                device_memory=BIG)
    mg1 = factorize_rl_multigpu(symb, M, num_devices=1, threshold=0,
                                device_memory=BIG)
    print(f"  reference rl_multigpu speedup (4 devices): "
          f"{mg1.modeled_seconds / mg4.modeled_seconds:.2f}x")
    snapshot["rl_multigpu_speedup_4dev"] = (mg1.modeled_seconds
                                            / mg4.modeled_seconds)
    snapshot["determinism_failures"] = len(failures)
    path = save_snapshot("gpu_dag", snapshot)
    if path:
        print(f"  wrote snapshot {path}")
    if failures:
        print(f"FAILED: {len(failures)} determinism mismatches")
        status = 1
    return status


if __name__ == "__main__":
    raise SystemExit(main())
