"""Wall-clock benchmark of the threaded task-DAG executor.

Sweeps ``workers x granularity`` of :func:`repro.numeric.executor.
factorize_executor` against the serial engines on a 3-D grid Laplacian
(default ``30,30,8``, the acceptance problem), verifying on every run that
the parallel factors are *bit-identical* to the serial ones (the
deterministic reduction-order contract).

Exits non-zero when the best parallel speedup falls below ``--min-speedup``
(default: the ``BENCH_EXECUTOR_MIN_SPEEDUP`` env var, else 1.8 — the PR's
acceptance threshold), so CI can run it as a loud perf-regression guard and
relax the bar on noisy shared runners without editing the workflow.

``--determinism-only`` skips the timing sweep and only checks the
bit-reproducibility contract (twice at ``workers=4``, once at ``workers=1``,
against serial) — the mode CI's determinism job runs on every PR.

Run:  PYTHONPATH=src python benchmarks/bench_executor.py
      PYTHONPATH=src python benchmarks/bench_executor.py --workers 1,2,4
      PYTHONPATH=src python benchmarks/bench_executor.py \\
          --shape 16,16,6 --determinism-only        # CI determinism gate
"""

from __future__ import annotations

import os

# Task-level parallelism is the thing being measured: pin the BLAS pool to
# one thread per call (MA87-style) *before* NumPy/SciPy load the libraries.
for _var in ("OPENBLAS_NUM_THREADS", "OMP_NUM_THREADS", "MKL_NUM_THREADS"):
    os.environ.setdefault(_var, "1")

import argparse
import pathlib
import sys
from functools import partial

import numpy as np

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from harness import best_of, save_snapshot
from repro.numeric import factorize_rl_cpu, factorize_rlb_cpu
from repro.numeric.executor import factorize_executor
from repro.sparse import grid_laplacian
from repro.symbolic import analyze

SERIAL = {"coarse": factorize_rl_cpu, "fine": factorize_rlb_cpu}


def _identical(res, ref):
    if len(res.storage.panels) != len(ref.storage.panels):
        return False
    pairs = zip(res.storage.panels, ref.storage.panels)
    return all(np.array_equal(p, q) for p, q in pairs)


def check_determinism(symb, M, workers=4):
    """The CI determinism gate: ``workers=N`` twice and ``workers=1`` must
    all be bit-identical to the serial engine of the same granularity."""
    failures = []
    for granularity in ("coarse", "fine"):
        ref = SERIAL[granularity](symb, M)
        runs = {
            f"workers={workers} run 1": factorize_executor(
                symb, M, workers=workers, granularity=granularity
            ),
            f"workers={workers} run 2": factorize_executor(
                symb, M, workers=workers, granularity=granularity
            ),
            "workers=1": factorize_executor(symb, M, workers=1, granularity=granularity),
        }
        for label, res in runs.items():
            ok = _identical(res, ref)
            mark = "ok" if ok else "MISMATCH"
            print(f"  {granularity:>6} {label:<18} vs serial: {mark}")
            if not ok:
                failures.append((granularity, label))
    return failures


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--shape",
        default="30,30,8",
        help="grid Laplacian shape, comma separated",
    )
    ap.add_argument(
        "--workers",
        default="1,2,4",
        help="comma-separated worker counts to sweep",
    )
    ap.add_argument(
        "--granularity",
        default="coarse,fine",
        help="comma-separated granularities to sweep",
    )
    ap.add_argument("--repeats", type=int, default=3, help="timing repeats (best-of)")
    ap.add_argument(
        "--min-speedup",
        type=float,
        default=float(os.environ.get("BENCH_EXECUTOR_MIN_SPEEDUP", "1.8")),
        help="fail when the best parallel speedup over the serial engine "
        "is below this (env default: BENCH_EXECUTOR_MIN_SPEEDUP)",
    )
    ap.add_argument(
        "--determinism-only",
        action="store_true",
        help="skip timings; only verify the bit-reproducibility contract",
    )
    args = ap.parse_args(argv)

    shape = tuple(int(t) for t in args.shape.split(","))
    A = grid_laplacian(shape)
    system = analyze(A)
    symb, M = system.symb, system.matrix
    print(
        f"grid_laplacian{shape}: n = {A.n}, nnz_lower = {A.nnz_lower}, "
        f"{symb.nsup} supernodes, cores = {os.cpu_count()}\n"
    )

    if args.determinism_only:
        print("determinism contract (bit-identical factors):")
        failures = check_determinism(symb, M)
        if failures:
            print(f"\nFAIL: {len(failures)} non-deterministic run(s)")
            return 1
        print("\nOK: all factors bit-identical to serial")
        return 0

    workers_list = [int(t) for t in args.workers.split(",")]
    granularities = [g.strip() for g in args.granularity.split(",")]
    best_speedup = 0.0
    ok = True
    rows = []
    for granularity in granularities:
        serial_fn = SERIAL[granularity]
        t_serial, ref = best_of(lambda: serial_fn(symb, M), args.repeats)
        print(f"{granularity} granularity (serial {t_serial * 1e3:.1f} ms):")
        for workers in workers_list:
            run_par = partial(
                factorize_executor,
                symb,
                M,
                workers=workers,
                granularity=granularity,
            )
            t_par, res = best_of(run_par, args.repeats)
            bitwise = _identical(res, ref)
            ok = ok and bitwise
            speedup = t_serial / t_par
            if workers > 1:
                best_speedup = max(best_speedup, speedup)
            print(
                f"  workers={workers:<3d} {t_par * 1e3:9.2f} ms "
                f"({speedup:5.2f}x vs serial, {res.extra['tasks']} tasks, "
                f"bit-identical: {'yes' if bitwise else 'NO'})"
            )
            rows.append(
                {
                    "granularity": granularity,
                    "workers": workers,
                    "serial_seconds": t_serial,
                    "parallel_seconds": t_par,
                    "speedup": speedup,
                    "tasks": res.extra["tasks"],
                    "bit_identical": bitwise,
                }
            )
        print()

    path = save_snapshot(
        "executor",
        {
            "shape": list(shape),
            "repeats": args.repeats,
            "min_speedup": args.min_speedup,
            "best_speedup": best_speedup,
            "rows": rows,
        },
    )
    if path:
        print(f"wrote snapshot {path}")
    if not ok:
        print("FAIL: parallel factors are not bit-identical to serial")
        return 1
    if best_speedup < args.min_speedup:
        print(f"FAIL: best parallel speedup {best_speedup:.2f}x < {args.min_speedup}x")
        return 1
    print(
        f"OK: best parallel speedup {best_speedup:.2f}x >= {args.min_speedup}x, "
        "all factors bit-identical"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
