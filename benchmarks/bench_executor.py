"""Wall-clock benchmark of the task-DAG executor (threads or processes).

Sweeps ``workers x granularity`` of :func:`repro.numeric.executor.
factorize_executor` against the serial engines on a 3-D grid Laplacian
(default ``30,30,8``, the acceptance problem), verifying on every run that
the parallel factors are *bit-identical* to the serial ones (the
deterministic reduction-order contract).

Exits non-zero when the best parallel speedup falls below ``--min-speedup``
(default: the ``BENCH_EXECUTOR_MIN_SPEEDUP`` env var, else 1.8 — the PR's
acceptance threshold), so CI can run it as a loud perf-regression guard and
relax the bar on noisy shared runners without editing the workflow.

``--backend process`` runs the same sweep through the shared-memory
worker-process pool (:mod:`repro.numeric.procpool`) and *additionally*
times the threaded executor at every point: the scatter/commit python in
the coarse task bodies holds the GIL, so on multicore hosts processes
should beat threads there.  The guard becomes "best coarse
process-vs-threads speedup at workers >= 2 must reach ``--min-speedup``"
(env default: ``BENCH_PROCESS_MIN_SPEEDUP``, else 1.0) and the snapshot
lands in ``BENCH_PROCESS.json``.

``--determinism-only`` skips the timing sweep and only checks the
bit-reproducibility contract (twice at ``workers=4``, once at ``workers=1``,
against serial) — the mode CI's determinism job runs on every PR, for both
backends.

Run:  PYTHONPATH=src python benchmarks/bench_executor.py
      PYTHONPATH=src python benchmarks/bench_executor.py --workers 1,2,4
      PYTHONPATH=src python benchmarks/bench_executor.py \\
          --shape 16,16,6 --determinism-only        # CI determinism gate
      PYTHONPATH=src python benchmarks/bench_executor.py \\
          --backend process --workers 2,4           # GIL-escape guard
"""

from __future__ import annotations

import os
import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).parent))

# Task-level parallelism is the thing being measured: pin the BLAS pool to
# one thread per call (MA87-style) *before* NumPy/SciPy load the libraries.
from _blas import pin_blas_threads

pin_blas_threads()

import argparse
from functools import partial

import numpy as np

from harness import best_of, save_snapshot
from repro.numeric import factorize_rl_cpu, factorize_rlb_cpu
from repro.numeric.executor import factorize_executor
from repro.numeric.procpool import default_process_pool, factorize_process
from repro.sparse import grid_laplacian
from repro.symbolic import analyze

SERIAL = {"coarse": factorize_rl_cpu, "fine": factorize_rlb_cpu}


def _identical(res, ref):
    if len(res.storage.panels) != len(ref.storage.panels):
        return False
    pairs = zip(res.storage.panels, ref.storage.panels)
    return all(np.array_equal(p, q) for p, q in pairs)


def _dag_fn(backend):
    """The sweep's parallel entry point: the threaded executor or the
    shared-memory process pool (same DAGs, same determinism contract)."""
    return factorize_process if backend == "process" else factorize_executor


def check_determinism(symb, M, workers=4, backend="threads"):
    """The CI determinism gate: ``workers=N`` twice and ``workers=1`` must
    all be bit-identical to the serial engine of the same granularity."""
    fn = _dag_fn(backend)
    failures = []
    for granularity in ("coarse", "fine"):
        ref = SERIAL[granularity](symb, M)
        runs = {
            f"workers={workers} run 1": fn(
                symb, M, workers=workers, granularity=granularity
            ),
            f"workers={workers} run 2": fn(
                symb, M, workers=workers, granularity=granularity
            ),
            "workers=1": fn(symb, M, workers=1, granularity=granularity),
        }
        for label, res in runs.items():
            ok = _identical(res, ref)
            mark = "ok" if ok else "MISMATCH"
            print(f"  {granularity:>6} {label:<18} vs serial: {mark}")
            if not ok:
                failures.append((granularity, label))
    return failures


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--shape",
        default="30,30,8",
        help="grid Laplacian shape, comma separated",
    )
    ap.add_argument(
        "--workers",
        default="1,2,4",
        help="comma-separated worker counts to sweep",
    )
    ap.add_argument(
        "--granularity",
        default="coarse,fine",
        help="comma-separated granularities to sweep",
    )
    ap.add_argument("--repeats", type=int, default=3, help="timing repeats (best-of)")
    ap.add_argument(
        "--backend",
        default="threads",
        choices=("threads", "process"),
        help="scheduling substrate to sweep: worker threads (default) or "
        "the shared-memory worker-process pool",
    )
    ap.add_argument(
        "--start-method",
        default=None,
        choices=("fork", "spawn", "forkserver"),
        help="multiprocessing start method for --backend process "
        "(default: the platform default)",
    )
    ap.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        help="threads: fail when the best parallel speedup over serial is "
        "below this (env default: BENCH_EXECUTOR_MIN_SPEEDUP, else 1.8); "
        "process: fail when the best coarse process-vs-threads speedup at "
        "workers >= 2 is below this (env default: "
        "BENCH_PROCESS_MIN_SPEEDUP, else 1.0)",
    )
    ap.add_argument(
        "--determinism-only",
        action="store_true",
        help="skip timings; only verify the bit-reproducibility contract",
    )
    args = ap.parse_args(argv)
    if args.min_speedup is None:
        if args.backend == "process":
            args.min_speedup = float(os.environ.get("BENCH_PROCESS_MIN_SPEEDUP", "1.0"))
        else:
            args.min_speedup = float(os.environ.get("BENCH_EXECUTOR_MIN_SPEEDUP", "1.8"))

    shape = tuple(int(t) for t in args.shape.split(","))
    A = grid_laplacian(shape)
    system = analyze(A)
    symb, M = system.symb, system.matrix
    print(
        f"grid_laplacian{shape}: n = {A.n}, nnz_lower = {A.nnz_lower}, "
        f"{symb.nsup} supernodes, cores = {os.cpu_count()}\n"
    )

    if args.determinism_only:
        print(f"determinism contract (bit-identical factors, {args.backend}):")
        failures = check_determinism(symb, M, backend=args.backend)
        if failures:
            print(f"\nFAIL: {len(failures)} non-deterministic run(s)")
            return 1
        print("\nOK: all factors bit-identical to serial")
        return 0

    process = args.backend == "process"
    fn = _dag_fn(args.backend)
    workers_list = [int(t) for t in args.workers.split(",")]
    granularities = [g.strip() for g in args.granularity.split(",")]
    best_speedup = 0.0
    ok = True
    rows = []
    for granularity in granularities:
        serial_fn = SERIAL[granularity]
        t_serial, ref = best_of(lambda: serial_fn(symb, M), args.repeats)
        print(f"{granularity} granularity (serial {t_serial * 1e3:.1f} ms):")
        for workers in workers_list:
            kwargs = dict(workers=workers, granularity=granularity)
            if process:
                # pool startup + pattern warm-up are one-time costs; pay
                # them (and keep the pool hot) outside the timed repeats
                kwargs["start_method"] = args.start_method
                default_process_pool(workers, args.start_method)
                factorize_process(symb, M, **kwargs)
            run_par = partial(fn, symb, M, **kwargs)
            t_par, res = best_of(run_par, args.repeats)
            bitwise = _identical(res, ref)
            ok = ok and bitwise
            speedup = t_serial / t_par
            row = {
                "granularity": granularity,
                "workers": workers,
                "serial_seconds": t_serial,
                "parallel_seconds": t_par,
                "speedup": speedup,
                "tasks": res.extra["tasks"],
                "bit_identical": bitwise,
            }
            if process:
                # the point of escaping the GIL: measure threads at the
                # same point and report process-vs-threads directly
                run_thr = partial(
                    factorize_executor,
                    symb,
                    M,
                    workers=workers,
                    granularity=granularity,
                )
                t_thr, _ = best_of(run_thr, args.repeats)
                vs_threads = t_thr / t_par
                row["threads_seconds"] = t_thr
                row["vs_threads"] = vs_threads
                row["start_method"] = res.extra["start_method"]
                if workers > 1 and granularity == "coarse":
                    best_speedup = max(best_speedup, vs_threads)
                print(
                    f"  workers={workers:<3d} {t_par * 1e3:9.2f} ms "
                    f"({speedup:5.2f}x vs serial, {vs_threads:5.2f}x vs "
                    f"threads [{t_thr * 1e3:.2f} ms], "
                    f"bit-identical: {'yes' if bitwise else 'NO'})"
                )
            else:
                if workers > 1:
                    best_speedup = max(best_speedup, speedup)
                print(
                    f"  workers={workers:<3d} {t_par * 1e3:9.2f} ms "
                    f"({speedup:5.2f}x vs serial, {res.extra['tasks']} tasks, "
                    f"bit-identical: {'yes' if bitwise else 'NO'})"
                )
            rows.append(row)
        print()

    path = save_snapshot(
        "process" if process else "executor",
        {
            "shape": list(shape),
            "repeats": args.repeats,
            "backend": args.backend,
            "min_speedup": args.min_speedup,
            "best_speedup": best_speedup,
            "rows": rows,
        },
    )
    if path:
        print(f"wrote snapshot {path}")
    if not ok:
        print("FAIL: parallel factors are not bit-identical to serial")
        return 1
    label = (
        "best coarse process-vs-threads speedup (workers >= 2)"
        if process
        else "best parallel speedup"
    )
    if best_speedup < args.min_speedup:
        print(f"FAIL: {label} {best_speedup:.2f}x < {args.min_speedup}x")
        return 1
    print(
        f"OK: {label} {best_speedup:.2f}x >= {args.min_speedup}x, "
        "all factors bit-identical"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
