"""Table II reproduction: GPU-accelerated RLB (version 2) runtimes and
speedups.

Paper reference (Table II): speedups from 1.09x (dielFilterV2real) to 3.15x
(Queen_4147); RLB successfully factorizes nlpkkt120 (unlike RL) thanks to
its much smaller device-memory footprint; RLB-GPU is generally slower than
RL-GPU.
"""

from __future__ import annotations

from conftest import suite_names, write_result
from repro.analysis import format_table
from repro.sparse import get_entry


def build_table(runs):
    headers = ["Matrix", "runtime(s)", "speedup", "snodes on GPU", "total",
               "paper speedup"]
    rows = []
    for name in suite_names():
        r = runs[name]
        paper = get_entry(name).rlb.speedup
        assert r.rlb_gpu is not None
        rows.append((
            name,
            f"{r.rlb_gpu.modeled_seconds:.4f}",
            f"{r.speedup(r.rlb_gpu):.2f}",
            str(r.rlb_gpu.snodes_on_gpu),
            str(r.nsup),
            f"{paper:.2f}" if paper else "--",
        ))
    return format_table(headers, rows,
                        title="Table II — GPU accelerated RLB v2 (modeled)")


def test_table2(suite_runs, benchmark):
    text = benchmark.pedantic(lambda: build_table(suite_runs),
                              rounds=1, iterations=1)
    write_result("table2_rlb_gpu.txt", text)
    rl_wins = 0
    total = 0
    for name in suite_names():
        r = suite_runs[name]
        assert r.rlb_gpu is not None, \
            f"{name}: RLB v2 must factorize every matrix, incl. nlpkkt120"
        assert r.speedup(r.rlb_gpu) >= 0.95, \
            f"{name}: RLB-GPU must not lose to the CPU baseline"
        if r.rl_gpu is not None:
            total += 1
            rl_wins += (r.rl_gpu.modeled_seconds
                        <= r.rlb_gpu.modeled_seconds)
    # the paper finds RL-GPU faster than RLB-GPU across the board; allow a
    # small number of inversions at surrogate scale
    assert rl_wins >= max(1, int(0.6 * total)), \
        f"RL-GPU should usually beat RLB-GPU (won {rl_wins}/{total})"


def test_nlpkkt120_memory_contrast(suite_runs):
    """The paper's headline memory result in one assertion pair."""
    r = suite_runs["nlpkkt120"]
    assert r.rl_gpu is None and r.rlb_gpu is not None
    # and the successful RLB run stayed within the device
    from repro.numeric import DEFAULT_DEVICE_MEMORY

    assert r.rlb_gpu.gpu_stats.peak_memory <= DEFAULT_DEVICE_MEMORY
