"""Ablation: transfer bandwidth / latency sensitivity.

Supports the paper's §IV-B conclusion — "for data transfer between CPU and
GPU the latency is negligible but the bandwidth is important": scaling the
PCIe bandwidth changes GPU runtimes substantially, scaling the latency
barely moves them.
"""

from __future__ import annotations

from conftest import suite_names, write_result
from repro.analysis import format_table
from repro.gpu import MachineModel, TransferModel
from repro.numeric import factorize_rl_gpu, factorize_rlb_gpu

BIG_MEM = 10 ** 15


def machine_with(bw_scale=1.0, lat_scale=1.0):
    base = TransferModel()
    return MachineModel(transfer=TransferModel(
        latency_s=base.latency_s * lat_scale,
        bandwidth_gbs=base.bandwidth_gbs * bw_scale,
    ))


def sweep(names):
    from conftest import get_system

    systems = {n: get_system(n) for n in names}

    # Default thresholds — the shipping configuration.  Only large
    # supernodes are offloaded, so the transfers in play are the big
    # panel/update-matrix moves about which §IV-B draws its conclusion
    # (small latency-bound supernodes stay on the CPU by construction).
    def total(machine):
        t = 0.0
        for n in names:
            sy = systems[n]
            t += factorize_rl_gpu(sy.symb, sy.matrix, machine=machine,
                                  device_memory=BIG_MEM).modeled_seconds
            t += factorize_rlb_gpu(sy.symb, sy.matrix, version=2,
                                   machine=machine,
                                   device_memory=BIG_MEM).modeled_seconds
        return t

    base = total(machine_with())
    rows = [("baseline", "1x bw, 1x lat", f"{base:.4f}", "+0.0%")]
    effects = {}
    for label, kw in [("bandwidth / 4", dict(bw_scale=0.25)),
                      ("bandwidth x 4", dict(bw_scale=4.0)),
                      ("latency x 10", dict(lat_scale=10.0)),
                      ("latency / 10", dict(lat_scale=0.1))]:
        t = total(machine_with(**kw))
        effects[label] = t / base - 1
        rows.append((label, str(kw), f"{t:.4f}",
                     f"{100 * (t / base - 1):+.1f}%"))
    text = format_table(["variant", "change", "suite GPU time (s)",
                         "vs baseline"], rows,
                        title="Ablation: transfer bandwidth vs latency")
    return text, effects


def test_transfer_sensitivity(benchmark):
    names = [n for n in suite_names() if n != "nlpkkt120"][:5]
    text, effects = benchmark.pedantic(lambda: sweep(names), rounds=1,
                                       iterations=1)
    write_result("ablation_transfer.txt", text)
    # bandwidth matters: quartering it visibly slows the suite
    assert effects["bandwidth / 4"] > 0.02
    # latency is negligible: 10x latency moves the total by only a little
    assert abs(effects["latency x 10"]) < 0.10
    assert abs(effects["latency / 10"]) < 0.05
    # and the bandwidth effect dwarfs the latency effect — the paper's claim
    assert effects["bandwidth / 4"] > 2 * abs(effects["latency x 10"])
