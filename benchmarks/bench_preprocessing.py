"""§IV-A preprocessing reproduction: supernode merging and partition
refinement statistics.

Paper reference: supernodes are merged greedily by minimum new fill until
factor storage grows 25 %; partition refinement then reorders columns within
supernodes to reduce the number of blocks, which is "essential to attain
high performance using RLB".
"""

from __future__ import annotations

from conftest import suite_names, write_result
from repro.analysis import format_table
from repro.sparse import get_entry
from repro.symbolic import analyze, count_blocks


def preprocessing_stats(names):
    rows = []
    checks = []
    for name in names:
        A = get_entry(name).builder()
        plain = analyze(A, merge=False, refine=False)
        merged = analyze(A, merge=True, refine=False)
        refined = analyze(A, merge=True, refine=True)
        growth = (merged.symb.factor_nnz_dense()
                  / plain.symb.factor_nnz_dense() - 1)
        rows.append((
            name,
            str(plain.nsup),
            str(merged.nsup),
            f"{100 * growth:.1f}%",
            str(count_blocks(merged.symb)),
            str(count_blocks(refined.symb)),
        ))
        checks.append((name, plain.nsup, merged.nsup, growth,
                       count_blocks(merged.symb),
                       count_blocks(refined.symb)))
    text = format_table(
        ["Matrix", "fund. snodes", "merged", "storage growth",
         "blocks (merged)", "blocks (+PR)"],
        rows, title="§IV-A preprocessing: merging (cap 25%) + partition "
                    "refinement")
    return text, checks


def test_preprocessing(benchmark):
    # a representative subset keeps this bench quick even in full mode
    names = [n for n in suite_names()
             if n in ("CurlCurl_2", "bone010", "Serena", "Queen_4147",
                      "PFlow_742", "audikw_1")] or suite_names()[:4]
    text, checks = benchmark.pedantic(
        lambda: preprocessing_stats(names), rounds=1, iterations=1)
    write_result("preprocessing_stats.txt", text)
    for name, n0, n1, growth, b0, b1 in checks:
        assert n1 < n0, f"{name}: merging must coarsen the partition"
        assert growth <= 0.25 + 1e-9, f"{name}: 25% cap violated"
        assert b1 <= b0 * 1.05 + 5, f"{name}: refinement made blocks worse"
    # refinement strictly helps somewhere
    assert any(b1 < b0 for _, _, _, _, b0, b1 in checks)
