"""Wall-clock benchmark of the fast-path layer: panel scatter plans and
same-pattern refactorization.

Measures, on a 3-D grid Laplacian (default ``40x40x10``, the acceptance
problem):

1. ``FactorStorage.from_matrix`` — the seed's per-column ``searchsorted``
   scatter (re-implemented here as the reference) against the vectorised
   :class:`~repro.numeric.storage.ScatterPlan` path, cold (plan built) and
   warm (plan cached on the symbolic factor);
2. a repeated same-pattern factorize+solve cycle — a fresh ``repro.plan``
   per iteration (ordering + symbolic + numeric every time) against one
   reused plan refactorizing values only (numeric only).

Exits non-zero when the from_matrix or cycle speedup falls below
``--min-speedup`` (default: the ``BENCH_MIN_SPEEDUP`` env var, else 3.0 —
the PR-1 acceptance threshold), so CI can run it as a loud perf-regression
guard and relax the bar on noisy shared runners without editing the
workflow.  All timings are best-of-``--repeats`` to reject scheduler noise.

Run:  PYTHONPATH=src python benchmarks/bench_refactorize.py
      BENCH_MIN_SPEEDUP=1.2 PYTHONPATH=src \\
          python benchmarks/bench_refactorize.py --shape 12,12,4  # CI smoke
"""

from __future__ import annotations

import argparse
import os
import sys

import numpy as np

from harness import best_of
import repro
from repro.numeric.storage import FactorStorage, ScatterPlan
from repro.sparse import SymmetricCSC, grid_laplacian
from repro.symbolic import analyze


def _from_matrix_percolumn(symb, A):
    """The seed implementation: one searchsorted per column (reference)."""
    panels = [np.zeros(symb.panel_shape(s), order="F")
              for s in range(symb.nsup)]
    for s in range(symb.nsup):
        first, last = symb.snode_cols(s)
        rows_s = symb.snode_rows(s)
        panel = panels[s]
        for j in range(first, last):
            arows, avals = A.column(j)
            pos = np.searchsorted(rows_s, arows)
            panel[pos, j - first] = avals
    return FactorStorage(symb, panels)


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--shape", default="40,40,10",
                    help="grid Laplacian shape, comma separated")
    ap.add_argument("--repeats", type=int, default=5,
                    help="timing repeats (best-of)")
    ap.add_argument("--cycles", type=int, default=4,
                    help="factorize+solve cycles per protocol")
    ap.add_argument("--method", default="rl", help="factorization engine")
    ap.add_argument("--min-speedup", type=float,
                    default=float(os.environ.get("BENCH_MIN_SPEEDUP", "3.0")),
                    help="fail when below this (scatter and cycle; env "
                         "default: BENCH_MIN_SPEEDUP)")
    args = ap.parse_args(argv)

    shape = tuple(int(t) for t in args.shape.split(","))
    A = grid_laplacian(shape)
    system = analyze(A)
    symb, M = system.symb, system.matrix
    print(f"grid_laplacian{shape}: n = {A.n}, nnz_lower = {A.nnz_lower}, "
          f"{symb.nsup} supernodes\n")

    # -- 1. panel scatter --------------------------------------------------
    t_seed, ref = best_of(lambda: _from_matrix_percolumn(symb, M),
                          args.repeats)

    def cold():
        symb.cache().pop("scatter_plan", None)
        return FactorStorage.from_matrix(symb, M)

    t_cold, st_cold = best_of(cold, args.repeats)
    ScatterPlan.get(symb, M)  # ensure cached
    t_warm, st_warm = best_of(
        lambda: FactorStorage.from_matrix(symb, M), args.repeats)
    for p, q, r in zip(ref.panels, st_cold.panels, st_warm.panels):
        assert np.array_equal(p, q) and np.array_equal(p, r)
    print("FactorStorage.from_matrix (best of %d):" % args.repeats)
    print(f"  per-column seed scatter : {t_seed * 1e3:9.2f} ms")
    print(f"  scatter plan, cold      : {t_cold * 1e3:9.2f} ms "
          f"({t_seed / t_cold:5.1f}x)")
    print(f"  scatter plan, warm      : {t_warm * 1e3:9.2f} ms "
          f"({t_seed / t_warm:5.1f}x)\n")

    # -- 2. repeated same-pattern factorize+solve cycle --------------------
    rng = np.random.default_rng(0)
    b = A.matvec(np.ones(A.n))
    datas = [A.data * (1.0 + 0.01 * rng.random(A.data.size))
             for _ in range(args.cycles)]

    def fresh_cycle():
        xs = []
        for data in datas:
            At = SymmetricCSC(A.n, A.indptr, A.indices, data, check=False)
            factor = repro.plan(At).factorize(engine=args.method)
            xs.append(factor.solve(b))
        return xs

    reuse_plan = repro.plan(A)
    reuse_plan.factorize(engine=args.method)  # plan warm-up outside the loop

    def reuse_cycle():
        xs = []
        for data in datas:
            factor = reuse_plan.factorize(data, engine=args.method)
            xs.append(factor.solve(b))
        return xs

    # full best-of-N here too: the halved repeat count made the cycle
    # speedup flaky on loaded shared CI runners
    t_fresh, x_fresh = best_of(fresh_cycle, args.repeats)
    t_reuse, x_reuse = best_of(reuse_cycle, args.repeats)
    for u, v in zip(x_fresh, x_reuse):
        assert np.allclose(u, v, atol=1e-10)
    print(f"{args.cycles}-cycle same-pattern factorize+solve "
          f"({args.method}):")
    print(f"  fresh plan per cycle    : {t_fresh * 1e3:9.2f} ms")
    print(f"  refactorize reuse       : {t_reuse * 1e3:9.2f} ms "
          f"({t_fresh / t_reuse:5.1f}x)\n")

    ok = True
    if t_seed / t_cold < args.min_speedup:
        print(f"FAIL: cold scatter speedup {t_seed / t_cold:.2f}x "
              f"< {args.min_speedup}x")
        ok = False
    if t_fresh / t_reuse < args.min_speedup:
        print(f"FAIL: cycle speedup {t_fresh / t_reuse:.2f}x "
              f"< {args.min_speedup}x")
        ok = False
    if ok:
        print(f"OK: all speedups >= {args.min_speedup}x")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
