"""Ablation: what the asynchronous transfers buy.

The paper's RL-GPU schedule makes the factored-panel D2H *asynchronous*
("the CPU does not immediately require the data", §III) and RLB-v2 pipelines
per-block copies against the next block's kernel.  This bench disables each
overlap — a host-blocking panel copy for RL, a single in-flight buffer for
RLB-v2 — and reports the slowdown, alongside tracer-measured overlap seconds.
"""

from __future__ import annotations

from conftest import suite_names, write_result
from repro.analysis import format_table
from repro.gpu import MachineModel, SimulatedGpu, Tracer
from repro.gpu.device import Timeline
from repro.numeric import factorize_rl_gpu, factorize_rlb_gpu

BIG_MEM = 10 ** 15


def traced(fn, system, **kwargs):
    tracer = Tracer()
    machine = MachineModel()
    gpu = SimulatedGpu(BIG_MEM, machine=machine,
                       timeline=Timeline(tracer=tracer))
    res = fn(system.symb, system.matrix, machine=machine, device=gpu,
             **kwargs)
    return res, tracer


def sweep(names):
    from conftest import get_system

    rows = []
    ratios_rl, ratios_rlb = [], []
    for name in names:
        sy = get_system(name)
        r_async, tr = traced(factorize_rl_gpu, sy)
        r_sync, _ = traced(factorize_rl_gpu, sy, async_panel_d2h=False)
        r_pipe, _ = traced(factorize_rlb_gpu, sy, version=2, inflight=2)
        r_serial, _ = traced(factorize_rlb_gpu, sy, version=2, inflight=1)
        rl_pen = r_sync.modeled_seconds / r_async.modeled_seconds - 1
        rlb_pen = r_serial.modeled_seconds / r_pipe.modeled_seconds - 1
        ratios_rl.append(rl_pen)
        ratios_rlb.append(rlb_pen)
        rows.append((
            name,
            f"{r_async.modeled_seconds:.4f}",
            f"{100 * rl_pen:+.1f}%",
            f"{100 * rlb_pen:+.1f}%",
            f"{1e3 * tr.overlap('gpu', 'copy_out'):.2f}",
        ))
    text = format_table(
        ["Matrix", "RL-GPU async (s)", "sync-panel penalty",
         "1-buffer RLB penalty", "gpu//copy_out overlap (ms)"],
        rows, title="Ablation: asynchronous-transfer overlap")
    return text, ratios_rl, ratios_rlb


def test_overlap_ablation(benchmark):
    names = [n for n in suite_names() if n != "nlpkkt120"][-5:]
    text, ratios_rl, ratios_rlb = benchmark.pedantic(
        lambda: sweep(names), rounds=1, iterations=1)
    write_result("ablation_overlap.txt", text)
    # disabling an overlap can never help
    assert all(r >= -1e-9 for r in ratios_rl)
    assert all(r >= -1e-9 for r in ratios_rlb)
    # and it visibly hurts somewhere in the large half of the suite
    assert max(ratios_rl + ratios_rlb) > 0.005
