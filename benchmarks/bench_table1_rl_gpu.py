"""Table I reproduction: GPU-accelerated RL runtimes, speedups over the best
CPU time, and supernode-offload counts.

Paper reference (Table I): speedups from 1.31x (Flan_1565) to 4.47x
(Bump_2911); nlpkkt120 cannot run because its largest update matrix exceeds
device memory; only a small fraction of supernodes is computed on the GPU.
"""

from __future__ import annotations

from conftest import suite_names, write_result
from repro.analysis import format_table
from repro.sparse import get_entry


def build_table(runs):
    headers = ["Matrix", "runtime(s)", "speedup", "snodes on GPU", "total",
               "paper speedup"]
    rows = []
    for name in suite_names():
        r = runs[name]
        paper = get_entry(name).rl.speedup
        if r.rl_gpu is None:
            rows.append((name, None, None, None, str(r.nsup),
                         f"{paper:.2f}" if paper else "OOM (paper too)"))
            continue
        rows.append((
            name,
            f"{r.rl_gpu.modeled_seconds:.4f}",
            f"{r.speedup(r.rl_gpu):.2f}",
            str(r.rl_gpu.snodes_on_gpu),
            str(r.nsup),
            f"{paper:.2f}" if paper else "--",
        ))
    return format_table(headers, rows,
                        title="Table I — GPU accelerated RL (modeled)")


def test_table1(suite_runs, benchmark):
    text = benchmark.pedantic(lambda: build_table(suite_runs),
                              rounds=1, iterations=1)
    write_result("table1_rl_gpu.txt", text)
    # shape assertions from the paper
    speedups = []
    for name in suite_names():
        r = suite_runs[name]
        if name == "nlpkkt120":
            assert r.rl_gpu is None, \
                "nlpkkt120 must fail under RL (update matrix > device)"
            assert "rl_gpu" in r.failures
            continue
        assert r.rl_gpu is not None, f"{name} unexpectedly failed"
        s = r.speedup(r.rl_gpu)
        speedups.append((r.factor_flops, s))
        assert s > 1.0, f"{name}: RL-GPU must beat the CPU baseline ({s})"
    # speedups grow with problem size: biggest third beats smallest third
    speedups.sort()
    k = max(1, len(speedups) // 3)
    small = sum(s for _, s in speedups[:k]) / k
    large = sum(s for _, s in speedups[-k:]) / k
    assert large > small, "speedup must grow with factorization work"
