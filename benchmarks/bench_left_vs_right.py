"""Extension: the paper's right-looking offload vs a CHOLMOD-style
left-looking offload, on identical substrates.

CHOLMOD's production GPU path is left-looking; the paper never compares
against it directly.  This bench runs both (plus RLB-v2) with the same
machine model and thresholds and reports times and the left-looking
method's descendant re-transfer volume — its structural cost, which grows
with the ancestor fan-out while RL pays the one-shot update-matrix
transfer instead.
"""

from __future__ import annotations

from conftest import suite_names, write_result
from repro.analysis import format_table
from repro.numeric import (
    factorize_left_looking_gpu,
    factorize_rl_gpu,
    factorize_rlb_gpu,
)

BIG_MEM = 10 ** 15


def sweep(names):
    from conftest import get_system

    rows = []
    ratios = []
    for name in names:
        sy = get_system(name)
        rl = factorize_rl_gpu(sy.symb, sy.matrix, device_memory=BIG_MEM)
        rlb = factorize_rlb_gpu(sy.symb, sy.matrix, version=2,
                                device_memory=BIG_MEM)
        ll = factorize_left_looking_gpu(sy.symb, sy.matrix,
                                        device_memory=BIG_MEM)
        ratios.append(ll.modeled_seconds / rl.modeled_seconds)
        rows.append((
            name,
            f"{rl.modeled_seconds:.4f}",
            f"{rlb.modeled_seconds:.4f}",
            f"{ll.modeled_seconds:.4f}",
            f"{ll.extra['h2d_retransfer_bytes'] / 2 ** 20:.1f}",
            f"{ll.gpu_stats.h2d_bytes / max(rl.gpu_stats.h2d_bytes, 1):.2f}",
        ))
    text = format_table(
        ["Matrix", "RL-GPU (s)", "RLB-GPU (s)", "LL-GPU (s)",
         "LL re-transfers (MiB)", "LL/RL H2D ratio"],
        rows,
        title="Extension: right-looking (paper) vs left-looking (CHOLMOD "
              "shape) offload")
    return text, ratios


def test_left_vs_right(benchmark):
    names = [n for n in suite_names() if n != "nlpkkt120"][-6:]
    text, ratios = benchmark.pedantic(lambda: sweep(names), rounds=1,
                                      iterations=1)
    write_result("left_vs_right.txt", text)
    # both organisations land in the same ballpark on the simulated machine
    assert all(0.2 < r < 5.0 for r in ratios)
